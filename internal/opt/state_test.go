package opt

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
)

func stateTestParams(seed uint64) []*nn.Param {
	rng := mat.NewRNG(seed)
	w := mat.NewDense(3, 4)
	d := w.Data()
	for i := range d {
		d[i] = rng.Norm()
	}
	return []*nn.Param{nn.NewParam("w", w)}
}

func fillGrads(params []*nn.Param, rng *mat.RNG) {
	for _, p := range params {
		g := p.Grad.Data()
		for i := range g {
			g[i] = rng.Norm()
		}
	}
}

// A restored optimizer must continue bit-identically to one that never
// stopped: run A for 5 steps, snapshot, run both the original and a fresh
// optimizer restored from the snapshot for 5 more steps on identical
// gradients, and compare the weights.
func TestSGDStateRoundTripResumesExactly(t *testing.T) {
	pa := stateTestParams(1)
	a := NewSGD(pa, 0.1, 0.9, 1e-4)
	rng := mat.NewRNG(2)
	for s := 0; s < 5; s++ {
		fillGrads(pa, rng)
		a.Step()
	}
	snap, err := a.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	pb := stateTestParams(1)
	copy(pb[0].W.Data(), pa[0].W.Data())
	b := NewSGD(pb, 0.05, 0.9, 1e-4) // wrong LR on purpose; restore must fix it
	if err := b.LoadState(snap); err != nil {
		t.Fatal(err)
	}
	if b.LR() != 0.1 {
		t.Fatalf("restored LR = %v; want 0.1", b.LR())
	}

	rngA, rngB := mat.NewRNG(3), mat.NewRNG(3)
	for s := 0; s < 5; s++ {
		fillGrads(pa, rngA)
		a.Step()
		fillGrads(pb, rngB)
		b.Step()
	}
	if !mat.Equal(pa[0].W, pb[0].W, 0) {
		t.Fatal("restored SGD diverged from uninterrupted run")
	}
}

func TestAdamStateRoundTripResumesExactly(t *testing.T) {
	pa := stateTestParams(7)
	a := NewAdam(pa, 0.01, 1e-4)
	rng := mat.NewRNG(8)
	for s := 0; s < 5; s++ {
		fillGrads(pa, rng)
		a.Step()
	}
	snap, err := a.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	pb := stateTestParams(7)
	copy(pb[0].W.Data(), pa[0].W.Data())
	b := NewAdam(pb, 0.01, 1e-4)
	if err := b.LoadState(snap); err != nil {
		t.Fatal(err)
	}

	// Bias correction depends on the step count; divergence here means the
	// counter was not restored.
	rngA, rngB := mat.NewRNG(9), mat.NewRNG(9)
	for s := 0; s < 5; s++ {
		fillGrads(pa, rngA)
		a.Step()
		fillGrads(pb, rngB)
		b.Step()
	}
	if !mat.Equal(pa[0].W, pb[0].W, 0) {
		t.Fatal("restored Adam diverged from uninterrupted run")
	}
}

func TestSGDLoadStateRejectsShapeMismatch(t *testing.T) {
	a := NewSGD(stateTestParams(1), 0.1, 0.9, 0)
	snap, _ := a.SaveState()
	big := mat.NewDense(5, 5)
	b := NewSGD([]*nn.Param{nn.NewParam("w", big)}, 0.1, 0.9, 0)
	if err := b.LoadState(snap); err == nil {
		t.Fatal("shape-mismatched snapshot loaded without error")
	}
}
