package data

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
)

func TestSynthImagesShapeAndLabels(t *testing.T) {
	rng := mat.NewRNG(1)
	d := SynthImages(rng, ClassSpec{Classes: 4, PerClass: 10, Shape: nn.Shape{C: 3, H: 8, W: 8}, Noise: 0.1})
	if d.Len() != 40 {
		t.Fatalf("Len = %d; want 40", d.Len())
	}
	if d.X.Cols() != 3*8*8 {
		t.Fatalf("X cols = %d; want 192", d.X.Cols())
	}
	counts := map[int]int{}
	for _, l := range d.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	for k := 0; k < 4; k++ {
		if counts[k] != 10 {
			t.Fatalf("class %d count = %d; want 10", k, counts[k])
		}
	}
}

func TestSynthImagesDeterministic(t *testing.T) {
	spec := ClassSpec{Classes: 3, PerClass: 5, Shape: nn.Shape{C: 1, H: 6, W: 6}, Noise: 0.2}
	d1 := SynthImages(mat.NewRNG(7), spec)
	d2 := SynthImages(mat.NewRNG(7), spec)
	if !mat.Equal(d1.X, d2.X, 0) {
		t.Fatal("same seed produced different data")
	}
	d3 := SynthImages(mat.NewRNG(8), spec)
	if mat.Equal(d1.X, d3.X, 0) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSynthImagesClassesDiffer(t *testing.T) {
	// Class means must differ — otherwise the task is unlearnable.
	rng := mat.NewRNG(2)
	d := SynthImages(rng, ClassSpec{Classes: 2, PerClass: 50, Shape: nn.Shape{C: 1, H: 8, W: 8}, Noise: 0.05})
	mean := func(class int) []float64 {
		out := make([]float64, d.X.Cols())
		cnt := 0
		for i := 0; i < d.Len(); i++ {
			if d.Labels[i] != class {
				continue
			}
			for j, v := range d.X.Row(i) {
				out[j] += v
			}
			cnt++
		}
		for j := range out {
			out[j] /= float64(cnt)
		}
		return out
	}
	m0, m1 := mean(0), mean(1)
	var dist float64
	for j := range m0 {
		dd := m0[j] - m1[j]
		dist += dd * dd
	}
	if dist < 0.1 {
		t.Fatalf("class means too close: %g", dist)
	}
}

func TestSynthVectors(t *testing.T) {
	rng := mat.NewRNG(3)
	d := SynthVectors(rng, 5, 20, 16, 0.1)
	if d.Len() != 100 || d.X.Cols() != 16 || d.Classes != 5 {
		t.Fatalf("unexpected dataset: len=%d cols=%d classes=%d", d.Len(), d.X.Cols(), d.Classes)
	}
}

func TestSynthSegmentationMasksBinary(t *testing.T) {
	rng := mat.NewRNG(4)
	d := SynthSegmentation(rng, SegSpec{N: 20, Shape: nn.Shape{C: 2, H: 16, W: 16}, Noise: 0.5})
	if d.Masks.Rows() != 20 || d.Masks.Cols() != 256 {
		t.Fatalf("mask dims %dx%d", d.Masks.Rows(), d.Masks.Cols())
	}
	anyLesion := false
	for _, v := range d.Masks.Data() {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary mask value %g", v)
		}
		if v == 1 {
			anyLesion = true
		}
	}
	if !anyLesion {
		t.Fatal("no lesions generated in 20 samples")
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	rng := mat.NewRNG(5)
	d := SynthVectors(rng, 2, 50, 4, 0.1)
	tr, te := Split(mat.NewRNG(6), d, 0.2)
	if tr.Len()+te.Len() != d.Len() {
		t.Fatalf("split sizes %d+%d != %d", tr.Len(), te.Len(), d.Len())
	}
	if te.Len() != 20 {
		t.Fatalf("test size = %d; want 20", te.Len())
	}
}

func TestBatchIteratorCoversEpoch(t *testing.T) {
	rng := mat.NewRNG(7)
	it := NewBatchIterator(rng, 100, 25)
	if it.BatchesPerEpoch() != 4 {
		t.Fatalf("BatchesPerEpoch = %d; want 4", it.BatchesPerEpoch())
	}
	seen := map[int]bool{}
	for b := 0; b < 4; b++ {
		for _, i := range it.Next() {
			if seen[i] {
				t.Fatalf("index %d repeated within epoch", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("epoch covered %d samples; want 100", len(seen))
	}
	// Next epoch reshuffles without panic.
	if got := len(it.Next()); got != 25 {
		t.Fatalf("batch size = %d; want 25", got)
	}
}

func TestBatchExtraction(t *testing.T) {
	rng := mat.NewRNG(8)
	d := SynthVectors(rng, 3, 10, 5, 0.1)
	x, tgt := d.Batch([]int{0, 3, 7})
	if x.Rows() != 3 || len(tgt.Labels) != 3 {
		t.Fatalf("batch dims wrong: %d rows, %d labels", x.Rows(), len(tgt.Labels))
	}
	if tgt.Labels[1] != d.Labels[3] {
		t.Fatal("labels misaligned with rows")
	}
}

func TestAugmenterFlipOnly(t *testing.T) {
	shape := nn.Shape{C: 1, H: 2, W: 3}
	x := mat.FromRows([][]float64{{1, 2, 3, 4, 5, 6}})
	// Deterministic: find a seed whose first draw flips.
	var flipped *mat.Dense
	for seed := uint64(1); seed < 50; seed++ {
		a := NewAugmenter(mat.NewRNG(seed), shape, true, 0)
		out := a.Apply(x)
		if out.At(0, 0) == 3 { // row [1 2 3] reversed to [3 2 1]
			flipped = out
			break
		}
	}
	if flipped == nil {
		t.Fatal("no seed produced a flip in 50 tries")
	}
	want := mat.FromRows([][]float64{{3, 2, 1, 6, 5, 4}})
	if !mat.Equal(flipped, want, 0) {
		t.Fatalf("flip = %v; want %v", flipped, want)
	}
}

func TestAugmenterNoOpsPreserve(t *testing.T) {
	shape := nn.Shape{C: 2, H: 4, W: 4}
	rng := mat.NewRNG(3)
	x := mat.RandN(rng, 5, 32, 1)
	a := NewAugmenter(mat.NewRNG(4), shape, false, 0)
	if !mat.Equal(a.Apply(x), x, 0) {
		t.Fatal("no-op augmenter changed the batch")
	}
}

func TestAugmenterCropBounded(t *testing.T) {
	shape := nn.Shape{C: 1, H: 6, W: 6}
	rng := mat.NewRNG(5)
	x := mat.RandN(rng, 10, 36, 1)
	a := NewAugmenter(mat.NewRNG(6), shape, true, 2)
	out := a.Apply(x)
	// Energy can only shrink (zero padding) and stays finite.
	if out.FrobNorm() > x.FrobNorm()+1e-9 {
		t.Fatalf("augmented energy %g above input %g", out.FrobNorm(), x.FrobNorm())
	}
	if out.FrobNorm() == 0 {
		t.Fatal("augmentation zeroed everything")
	}
}

func TestStandardize(t *testing.T) {
	rng := mat.NewRNG(140)
	d := SynthVectors(rng, 2, 100, 8, 0.5)
	// Shift feature 0 heavily so standardization has work to do.
	for i := 0; i < d.Len(); i++ {
		d.X.Row(i)[0] += 100
	}
	mean, std := Standardize(d)
	if len(mean) != 8 || len(std) != 8 {
		t.Fatalf("stat lengths %d, %d", len(mean), len(std))
	}
	// After transform every feature has mean ≈ 0 and std ≈ 1.
	n := d.Len()
	for j := 0; j < 8; j++ {
		var m2, s2 float64
		for i := 0; i < n; i++ {
			m2 += d.X.At(i, j)
		}
		m2 /= float64(n)
		for i := 0; i < n; i++ {
			dd := d.X.At(i, j) - m2
			s2 += dd * dd
		}
		s2 /= float64(n)
		if m2 > 1e-9 || m2 < -1e-9 {
			t.Fatalf("feature %d mean %g after standardize", j, m2)
		}
		if s2 < 0.99 || s2 > 1.01 {
			t.Fatalf("feature %d variance %g after standardize", j, s2)
		}
	}
	// Applying the same stats to a second split must not panic and keeps
	// relative scale.
	d2 := SynthVectors(mat.NewRNG(141), 2, 20, 8, 0.5)
	ApplyStandardization(d2, mean, std)
}

func TestStandardizeConstantFeature(t *testing.T) {
	d := &Dataset{X: mat.NewDense(5, 2), Shape: nn.Vec(2)}
	for i := 0; i < 5; i++ {
		d.X.Set(i, 0, 7) // constant
		d.X.Set(i, 1, float64(i))
	}
	_, std := Standardize(d)
	if std[0] != 1 {
		t.Fatalf("constant feature std = %g; want fallback 1", std[0])
	}
	for i := 0; i < 5; i++ {
		if d.X.At(i, 0) != 0 {
			t.Fatal("constant feature should standardize to 0")
		}
	}
}

func TestSplitStratifiedPreservesRatios(t *testing.T) {
	rng := mat.NewRNG(150)
	// Imbalanced: class 0 has 80 samples, class 1 has 20.
	x := mat.RandN(rng, 100, 4, 1)
	labels := make([]int, 100)
	for i := 80; i < 100; i++ {
		labels[i] = 1
	}
	d := &Dataset{X: x, Labels: labels, Shape: nn.Vec(4), Classes: 2}
	tr, te := SplitStratified(mat.NewRNG(151), d, 0.25)
	count := func(ds *Dataset, c int) int {
		n := 0
		for _, l := range ds.Labels {
			if l == c {
				n++
			}
		}
		return n
	}
	if got := count(te, 0); got != 20 {
		t.Fatalf("test class-0 count = %d; want 20 (25%% of 80)", got)
	}
	if got := count(te, 1); got != 5 {
		t.Fatalf("test class-1 count = %d; want 5 (25%% of 20)", got)
	}
	if tr.Len()+te.Len() != 100 {
		t.Fatal("split lost samples")
	}
}

func TestSplitStratifiedFallsBackForSegmentation(t *testing.T) {
	rng := mat.NewRNG(152)
	d := SynthSegmentation(rng, SegSpec{N: 40, Shape: nn.Shape{C: 1, H: 8, W: 8}, Noise: 0.3})
	tr, te := SplitStratified(mat.NewRNG(153), d, 0.25)
	if tr.Len()+te.Len() != 40 || te.Masks == nil {
		t.Fatal("segmentation fallback split broken")
	}
}
