package data

import (
	"repro/internal/mat"
	"repro/internal/nn"
)

// Augmenter applies the standard small-image training augmentations
// (random horizontal flip, random shifted crop with zero padding) to a
// batch in place of the raw samples. Evaluation uses the raw data.
type Augmenter struct {
	Shape nn.Shape
	// Flip enables random horizontal flips (p = 0.5).
	Flip bool
	// Pad is the crop-shift radius in pixels (0 disables).
	Pad int

	rng *mat.RNG
}

// NewAugmenter returns an augmenter for samples of the given shape.
func NewAugmenter(rng *mat.RNG, shape nn.Shape, flip bool, pad int) *Augmenter {
	return &Augmenter{Shape: shape, Flip: flip, Pad: pad, rng: rng}
}

// RNG exposes the augmenter's random stream so checkpoints can capture and
// restore it alongside the other per-worker RNGs.
func (a *Augmenter) RNG() *mat.RNG { return a.rng }

// Apply returns an augmented copy of the batch (one independent draw per
// sample).
func (a *Augmenter) Apply(x *mat.Dense) *mat.Dense {
	out := mat.NewDense(x.Rows(), x.Cols())
	h, w := a.Shape.H, a.Shape.W
	for i := 0; i < x.Rows(); i++ {
		src, dst := x.Row(i), out.Row(i)
		flip := a.Flip && a.rng.Float64() < 0.5
		dy, dx := 0, 0
		if a.Pad > 0 {
			dy = a.rng.Intn(2*a.Pad+1) - a.Pad
			dx = a.rng.Intn(2*a.Pad+1) - a.Pad
		}
		for c := 0; c < a.Shape.C; c++ {
			base := c * h * w
			for y := 0; y < h; y++ {
				sy := y + dy
				if sy < 0 || sy >= h {
					continue // shifted-in rows stay zero (zero padding)
				}
				for xx := 0; xx < w; xx++ {
					sx := xx + dx
					if sx < 0 || sx >= w {
						continue
					}
					tx := xx
					if flip {
						tx = w - 1 - xx
					}
					dst[base+y*w+tx] = src[base+sy*w+sx]
				}
			}
		}
	}
	return out
}
