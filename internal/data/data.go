// Package data generates the deterministic synthetic datasets that stand in
// for ImageNet-1k, CIFAR-10/100, Fashion-MNIST, and the LGG MRI segmentation
// set (see DESIGN.md §2). Each generator produces structured, learnable
// tasks: images are class-conditioned mixtures of localized blobs and
// oriented gratings plus noise, and segmentation samples contain geometric
// lesions whose masks are the target.
package data

import (
	"math"

	"repro/internal/mat"
	"repro/internal/nn"
)

// Dataset is an in-memory supervised dataset with flattened samples.
type Dataset struct {
	// X holds one flattened sample per row.
	X *mat.Dense
	// Labels holds class indices for classification tasks (nil otherwise).
	Labels []int
	// Masks holds dense targets for segmentation tasks (nil otherwise).
	Masks *mat.Dense
	// Shape is the per-sample geometry.
	Shape nn.Shape
	// Classes is the number of classes (0 for segmentation).
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows() }

// Batch returns the subset of samples at idx as (inputs, target).
func (d *Dataset) Batch(idx []int) (*mat.Dense, nn.Target) {
	x := d.X.SelectRows(idx)
	if d.Labels != nil {
		lab := make([]int, len(idx))
		for k, i := range idx {
			lab[k] = d.Labels[i]
		}
		return x, nn.Target{Labels: lab}
	}
	return x, nn.Target{Dense: d.Masks.SelectRows(idx)}
}

// ClassSpec configures SynthImages.
type ClassSpec struct {
	Classes  int
	PerClass int
	Shape    nn.Shape
	// Noise is the per-pixel Gaussian noise sigma (task difficulty knob).
	Noise float64
}

// SynthImages generates a class-conditioned image classification dataset.
// Class k places a Gaussian blob at a class-specific location and overlays
// an oriented grating with class-specific frequency/phase across channels,
// so both local and global features carry label information — loosely the
// structure CNNs exploit in natural-image datasets.
func SynthImages(rng *mat.RNG, spec ClassSpec) *Dataset {
	n := spec.Classes * spec.PerClass
	d := spec.Shape.Numel()
	x := mat.NewDense(n, d)
	labels := make([]int, n)
	hw := spec.Shape.H * spec.Shape.W
	for i := 0; i < n; i++ {
		k := i % spec.Classes
		labels[i] = k
		row := x.Row(i)
		// Class-specific blob center on a ring.
		ang := 2 * math.Pi * float64(k) / float64(spec.Classes)
		cy := float64(spec.Shape.H)/2 + float64(spec.Shape.H)/4*math.Sin(ang)
		cx := float64(spec.Shape.W)/2 + float64(spec.Shape.W)/4*math.Cos(ang)
		sigma := float64(spec.Shape.H) / 6
		freq := 1 + float64(k%4)
		phase := float64(k) * math.Pi / float64(spec.Classes)
		// Small random jitter per sample.
		jy, jx := rng.Norm()*1.0, rng.Norm()*1.0
		amp := 0.8 + 0.4*rng.Float64()
		for c := 0; c < spec.Shape.C; c++ {
			chSign := 1.0
			if c%2 == 1 {
				chSign = -1
			}
			for yy := 0; yy < spec.Shape.H; yy++ {
				for xx := 0; xx < spec.Shape.W; xx++ {
					dy := float64(yy) - cy - jy
					dx := float64(xx) - cx - jx
					blob := amp * math.Exp(-(dy*dy+dx*dx)/(2*sigma*sigma))
					grate := 0.3 * math.Sin(2*math.Pi*freq*float64(xx)/float64(spec.Shape.W)+phase+float64(c))
					v := chSign*blob + grate + spec.Noise*rng.Norm()
					row[c*hw+yy*spec.Shape.W+xx] = v
				}
			}
		}
	}
	return &Dataset{X: x, Labels: labels, Shape: spec.Shape, Classes: spec.Classes}
}

// SynthVectors generates a linearly-nonseparable vector classification task
// (Gaussian mixtures on concentric shells) for MLP experiments.
func SynthVectors(rng *mat.RNG, classes, perClass, dim int, noise float64) *Dataset {
	n := classes * perClass
	x := mat.NewDense(n, dim)
	labels := make([]int, n)
	// Class centers: random orthogonal-ish directions with class-dependent
	// radius so both direction and magnitude carry information.
	centers := mat.RandN(rng, classes, dim, 1)
	for k := 0; k < classes; k++ {
		r := centers.Row(k)
		nrm := mat.Norm2(r)
		scale := (1 + 0.5*float64(k)) / nrm
		for j := range r {
			r[j] *= scale
		}
	}
	for i := 0; i < n; i++ {
		k := i % classes
		labels[i] = k
		row := x.Row(i)
		copy(row, centers.Row(k))
		for j := range row {
			row[j] += noise * rng.Norm()
		}
	}
	return &Dataset{X: x, Labels: labels, Shape: nn.Vec(dim), Classes: classes}
}

// SegSpec configures SynthSegmentation.
type SegSpec struct {
	N     int
	Shape nn.Shape // input shape; masks are H×W single-channel
	Noise float64
}

// SynthSegmentation generates a binary lesion-segmentation task in the
// spirit of the LGG MRI dataset: each image contains background texture and
// 0-2 elliptical "lesions" of higher intensity; the mask marks lesion
// pixels.
func SynthSegmentation(rng *mat.RNG, spec SegSpec) *Dataset {
	h, w := spec.Shape.H, spec.Shape.W
	x := mat.NewDense(spec.N, spec.Shape.Numel())
	masks := mat.NewDense(spec.N, h*w)
	for i := 0; i < spec.N; i++ {
		row := x.Row(i)
		mrow := masks.Row(i)
		// Background texture.
		for j := range row {
			row[j] = 0.2*rng.Norm()*spec.Noise + 0.1
		}
		nles := rng.Intn(3) // 0, 1, or 2 lesions
		for l := 0; l < nles; l++ {
			cy := 4 + rng.Float64()*float64(h-8)
			cx := 4 + rng.Float64()*float64(w-8)
			ry := 2 + rng.Float64()*float64(h)/6
			rx := 2 + rng.Float64()*float64(w)/6
			for yy := 0; yy < h; yy++ {
				for xx := 0; xx < w; xx++ {
					dy := (float64(yy) - cy) / ry
					dx := (float64(xx) - cx) / rx
					if dy*dy+dx*dx <= 1 {
						mrow[yy*w+xx] = 1
						for c := 0; c < spec.Shape.C; c++ {
							row[c*h*w+yy*w+xx] += 0.9 + 0.2*rng.Float64()
						}
					}
				}
			}
		}
	}
	return &Dataset{X: x, Masks: masks, Shape: spec.Shape}
}

// Standardize shifts and scales every feature to zero mean and unit
// variance computed over the given dataset, returning the (mean, std)
// vectors so the same transform can be applied to other splits. Constant
// features keep std 1.
func Standardize(d *Dataset) (mean, std []float64) {
	n, cols := d.X.Rows(), d.X.Cols()
	mean = make([]float64, cols)
	std = make([]float64, cols)
	for i := 0; i < n; i++ {
		for j, v := range d.X.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		for j, v := range d.X.Row(i) {
			dd := v - mean[j]
			std[j] += dd * dd
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	ApplyStandardization(d, mean, std)
	return mean, std
}

// ApplyStandardization applies a previously computed (mean, std) transform
// in place — used on validation/test splits with training statistics.
func ApplyStandardization(d *Dataset, mean, std []float64) {
	for i := 0; i < d.X.Rows(); i++ {
		row := d.X.Row(i)
		for j := range row {
			row[j] = (row[j] - mean[j]) / std[j]
		}
	}
}

// Split partitions a dataset into train/test by a deterministic shuffle.
func Split(rng *mat.RNG, d *Dataset, testFrac float64) (train, test *Dataset) {
	n := d.Len()
	perm := rng.Perm(n)
	nTest := int(float64(n) * testFrac)
	testIdx, trainIdx := perm[:nTest], perm[nTest:]
	sel := func(idx []int) *Dataset {
		out := &Dataset{Shape: d.Shape, Classes: d.Classes, X: d.X.SelectRows(idx)}
		if d.Labels != nil {
			out.Labels = make([]int, len(idx))
			for k, i := range idx {
				out.Labels[k] = d.Labels[i]
			}
		}
		if d.Masks != nil {
			out.Masks = d.Masks.SelectRows(idx)
		}
		return out
	}
	return sel(trainIdx), sel(testIdx)
}

// SplitStratified partitions a classification dataset into train/test
// preserving per-class proportions — the split small or imbalanced
// datasets need so the test set sees every class.
func SplitStratified(rng *mat.RNG, d *Dataset, testFrac float64) (train, test *Dataset) {
	if d.Labels == nil {
		return Split(rng, d, testFrac)
	}
	byClass := map[int][]int{}
	for i, l := range d.Labels {
		byClass[l] = append(byClass[l], i)
	}
	var trainIdx, testIdx []int
	// Deterministic class order.
	for c := 0; c < d.Classes; c++ {
		idx := byClass[c]
		perm := rng.Perm(len(idx))
		nTest := int(float64(len(idx)) * testFrac)
		for k, p := range perm {
			if k < nTest {
				testIdx = append(testIdx, idx[p])
			} else {
				trainIdx = append(trainIdx, idx[p])
			}
		}
	}
	sel := func(idx []int) *Dataset {
		out := &Dataset{Shape: d.Shape, Classes: d.Classes, X: d.X.SelectRows(idx)}
		out.Labels = make([]int, len(idx))
		for k, i := range idx {
			out.Labels[k] = d.Labels[i]
		}
		return out
	}
	return sel(trainIdx), sel(testIdx)
}

// BatchIterator yields shuffled minibatch index sets each epoch.
type BatchIterator struct {
	rng   *mat.RNG
	n, bs int
	perm  []int
	pos   int
}

// NewBatchIterator returns an iterator over n samples in batches of bs.
func NewBatchIterator(rng *mat.RNG, n, bs int) *BatchIterator {
	it := &BatchIterator{rng: rng, n: n, bs: bs}
	it.reshuffle()
	return it
}

func (it *BatchIterator) reshuffle() {
	it.perm = it.rng.Perm(it.n)
	it.pos = 0
}

// Next returns the next batch of indices, reshuffling at epoch boundaries.
// Batches are always full-size; a short tail is folded into the reshuffle.
func (it *BatchIterator) Next() []int {
	if it.pos+it.bs > it.n {
		it.reshuffle()
	}
	out := it.perm[it.pos : it.pos+it.bs]
	it.pos += it.bs
	return out
}

// BatchesPerEpoch returns the number of full batches per epoch.
func (it *BatchIterator) BatchesPerEpoch() int { return it.n / it.bs }

// IteratorState is the serializable snapshot of a BatchIterator: the RNG
// stream, the live permutation, and the cursor. Restoring it resumes the
// exact batch sequence a checkpointed run would have produced.
type IteratorState struct {
	RNG  mat.RNGState
	Perm []int
	Pos  int
}

// State captures the iterator (deep-copying the permutation).
func (it *BatchIterator) State() IteratorState {
	return IteratorState{
		RNG:  it.rng.State(),
		Perm: append([]int(nil), it.perm...),
		Pos:  it.pos,
	}
}

// Restore rewinds the iterator (and its RNG) to a captured state. The
// sample count and batch size must match the original iterator.
func (it *BatchIterator) Restore(s IteratorState) {
	it.rng.SetState(s.RNG)
	it.perm = append([]int(nil), s.Perm...)
	it.pos = s.Pos
}
