package data

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/mat"
	"repro/internal/nn"
)

// The IDX binary format (used by MNIST/Fashion-MNIST) packs a magic number
// (0x00 0x00 <type> <ndim>), big-endian dimension sizes, then raw data.
// This loader supports the two layouts the paper's datasets use: uint8
// 3-D image tensors and uint8 1-D label vectors. Synthetic substitutes
// remain the default; this path exists so real Fashion-MNIST files drop in
// when present.

const (
	idxTypeUint8 = 0x08
)

// ReadIDXImages parses an IDX3 uint8 image file into a row-per-sample
// matrix with pixel values scaled to [0, 1].
func ReadIDXImages(r io.Reader) (*mat.Dense, nn.Shape, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, nn.Shape{}, fmt.Errorf("data: idx magic: %w", err)
	}
	if magic[0] != 0 || magic[1] != 0 || magic[2] != idxTypeUint8 || magic[3] != 3 {
		return nil, nn.Shape{}, fmt.Errorf("data: not an IDX3 uint8 file (magic % x)", magic)
	}
	var dims [3]uint32
	for i := range dims {
		if err := binary.Read(r, binary.BigEndian, &dims[i]); err != nil {
			return nil, nn.Shape{}, fmt.Errorf("data: idx dims: %w", err)
		}
	}
	n, h, w := int(dims[0]), int(dims[1]), int(dims[2])
	if n < 0 || h <= 0 || w <= 0 || h*w > 1<<24 {
		return nil, nn.Shape{}, fmt.Errorf("data: implausible idx dims %dx%dx%d", n, h, w)
	}
	shape := nn.Shape{C: 1, H: h, W: w}
	out := mat.NewDense(n, h*w)
	buf := make([]byte, h*w)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, nn.Shape{}, fmt.Errorf("data: idx image %d: %w", i, err)
		}
		row := out.Row(i)
		for j, b := range buf {
			row[j] = float64(b) / 255
		}
	}
	return out, shape, nil
}

// ReadIDXLabels parses an IDX1 uint8 label file.
func ReadIDXLabels(r io.Reader) ([]int, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("data: idx magic: %w", err)
	}
	if magic[0] != 0 || magic[1] != 0 || magic[2] != idxTypeUint8 || magic[3] != 1 {
		return nil, fmt.Errorf("data: not an IDX1 uint8 file (magic % x)", magic)
	}
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, fmt.Errorf("data: idx count: %w", err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("data: idx labels: %w", err)
	}
	out := make([]int, n)
	for i, b := range buf {
		out[i] = int(b)
	}
	return out, nil
}

// LoadIDXDataset reads paired IDX image/label files (e.g. real
// Fashion-MNIST) into a Dataset.
func LoadIDXDataset(imagePath, labelPath string, classes int) (*Dataset, error) {
	imgF, err := os.Open(imagePath)
	if err != nil {
		return nil, err
	}
	defer imgF.Close()
	x, shape, err := ReadIDXImages(imgF)
	if err != nil {
		return nil, err
	}
	labF, err := os.Open(labelPath)
	if err != nil {
		return nil, err
	}
	defer labF.Close()
	labels, err := ReadIDXLabels(labF)
	if err != nil {
		return nil, err
	}
	if len(labels) != x.Rows() {
		return nil, fmt.Errorf("data: %d labels for %d images", len(labels), x.Rows())
	}
	return &Dataset{X: x, Labels: labels, Shape: shape, Classes: classes}, nil
}

// WriteIDXImages serializes a row-per-sample matrix into IDX3 format
// (pixels clipped to [0,1] and quantized to uint8) — the inverse of
// ReadIDXImages, used by tests and for exporting synthetic datasets in a
// format other tools read.
func WriteIDXImages(w io.Writer, x *mat.Dense, shape nn.Shape) error {
	if shape.C != 1 || shape.Numel() != x.Cols() {
		return fmt.Errorf("data: IDX images must be single-channel matching the matrix width")
	}
	if _, err := w.Write([]byte{0, 0, idxTypeUint8, 3}); err != nil {
		return err
	}
	for _, d := range []uint32{uint32(x.Rows()), uint32(shape.H), uint32(shape.W)} {
		if err := binary.Write(w, binary.BigEndian, d); err != nil {
			return err
		}
	}
	buf := make([]byte, x.Cols())
	for i := 0; i < x.Rows(); i++ {
		for j, v := range x.Row(i) {
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			buf[j] = byte(v*255 + 0.5)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteIDXLabels serializes labels into IDX1 format.
func WriteIDXLabels(w io.Writer, labels []int) error {
	if _, err := w.Write([]byte{0, 0, idxTypeUint8, 1}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, uint32(len(labels))); err != nil {
		return err
	}
	buf := make([]byte, len(labels))
	for i, l := range labels {
		if l < 0 || l > 255 {
			return fmt.Errorf("data: label %d out of uint8 range", l)
		}
		buf[i] = byte(l)
	}
	_, err := w.Write(buf)
	return err
}
