package data

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
)

func TestIDXImagesRoundTrip(t *testing.T) {
	rng := mat.NewRNG(1)
	shape := nn.Shape{C: 1, H: 6, W: 5}
	x := mat.RandUniform(rng, 7, 30, 0, 1)
	var buf bytes.Buffer
	if err := WriteIDXImages(&buf, x, shape); err != nil {
		t.Fatal(err)
	}
	got, gotShape, err := ReadIDXImages(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotShape != shape {
		t.Fatalf("shape = %v; want %v", gotShape, shape)
	}
	// Quantization to uint8 bounds the round-trip error by 1/255.
	if d := mat.MaxAbsDiff(got, x); d > 1.0/255+1e-9 {
		t.Fatalf("round-trip error %g above quantization bound", d)
	}
}

func TestIDXLabelsRoundTrip(t *testing.T) {
	labels := []int{0, 3, 9, 255, 1}
	var buf bytes.Buffer
	if err := WriteIDXLabels(&buf, labels); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIDXLabels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(labels) {
		t.Fatalf("len = %d; want %d", len(got), len(labels))
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("label %d = %d; want %d", i, got[i], labels[i])
		}
	}
}

func TestIDXLabelsRejectOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIDXLabels(&buf, []int{300}); err == nil {
		t.Fatal("expected error for label > 255")
	}
}

func TestIDXRejectsBadMagic(t *testing.T) {
	if _, _, err := ReadIDXImages(bytes.NewReader([]byte{9, 9, 9, 9, 0, 0, 0, 0})); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadIDXLabels(bytes.NewReader([]byte{0, 0, 8, 3})); err == nil {
		t.Fatal("expected IDX1 dimensionality error")
	}
}

func TestIDXRejectsTruncated(t *testing.T) {
	// Valid header claiming 2 samples of 2x2 but only 1 sample of data.
	raw := []byte{
		0, 0, 8, 3,
		0, 0, 0, 2, // n=2
		0, 0, 0, 2, // h=2
		0, 0, 0, 2, // w=2
		1, 2, 3, 4, // only one sample
	}
	if _, _, err := ReadIDXImages(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestLoadIDXDatasetEndToEnd(t *testing.T) {
	// Export a synthetic dataset to IDX files, then load it back and train
	// compatibility: shapes/labels/classes intact.
	rng := mat.NewRNG(2)
	shape := nn.Shape{C: 1, H: 8, W: 8}
	// Clamp synthetic images into [0,1] for the uint8 format.
	src := SynthImages(rng, ClassSpec{Classes: 3, PerClass: 5, Shape: shape, Noise: 0.1})
	for _, v := range src.X.Data() {
		_ = v
	}
	xd := src.X.Data()
	for i, v := range xd {
		if v < 0 {
			xd[i] = 0
		}
		if v > 1 {
			xd[i] = 1
		}
	}
	dir := t.TempDir()
	imgPath := filepath.Join(dir, "images.idx3")
	labPath := filepath.Join(dir, "labels.idx1")
	imgF, err := os.Create(imgPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXImages(imgF, src.X, shape); err != nil {
		t.Fatal(err)
	}
	imgF.Close()
	labF, err := os.Create(labPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(labF, src.Labels); err != nil {
		t.Fatal(err)
	}
	labF.Close()

	ds, err := LoadIDXDataset(imgPath, labPath, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 15 || ds.Shape != shape || ds.Classes != 3 {
		t.Fatalf("loaded dataset: len=%d shape=%v classes=%d", ds.Len(), ds.Shape, ds.Classes)
	}
	for i := range ds.Labels {
		if ds.Labels[i] != src.Labels[i] {
			t.Fatal("labels corrupted through IDX round trip")
		}
	}
}
