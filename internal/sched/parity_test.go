package sched_test

// Parity suite for the layer-parallel scheduler: every optimizer's Update +
// Precondition must produce BIT-IDENTICAL gradients whether the pipeline
// runs sequentially (-sched-workers=1, the legacy inline path) or
// layer-parallel — for single-process and simulated-cluster runs, and with
// chaos fault injection on the collectives. The external test package
// avoids an import cycle (the optimizers themselves import sched).

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/kbfgs"
	"repro/internal/kfac"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/numerics"
	"repro/internal/sched"
	"repro/internal/sngd"
)

// setWorkers switches the process-wide worker count for one comparison leg
// and restores the previous value when the test ends.
func setWorkers(t *testing.T, n int) {
	t.Helper()
	prev := sched.Workers()
	sched.SetWorkers(n)
	t.Cleanup(func() { sched.SetWorkers(prev) })
}

// precon is the slice of the opt.Preconditioner surface the parity runs
// exercise.
type precon interface {
	Update()
	Precondition()
}

// optBuilder constructs one optimizer over a captured network. Builders
// must be deterministic: the same net and rng seed yield the same state.
type optBuilder func(net *nn.Network, comm dist.Comm) precon

// buildNet replicates the data-parallel setup of the distributed trainer
// for one shard: identical weights on every rank (same init seed),
// rank-dependent data, captures and gradients populated.
func buildNet(rank, mPer, in, hid, out int) *nn.Network {
	rng := mat.NewRNG(400)
	net := nn.NewNetwork(nn.Vec(in), rng,
		nn.NewLinear(hid), nn.NewReLU(),
		nn.NewLinear(hid), nn.NewReLU(),
		nn.NewLinear(out))
	net.SetCapture(true)
	drng := mat.NewRNG(500 + 31*uint64(rank))
	x := mat.RandN(drng, mPer, in, 1)
	labels := make([]int, mPer)
	for i := range labels {
		labels[i] = (i + rank) % out
	}
	logits := net.Forward(x, true)
	_, g := nn.SoftmaxCrossEntropy{}.Forward(logits, nn.Target{Labels: labels})
	net.ZeroGrad()
	net.Backward(g)
	return net
}

// gradBits snapshots every kernel-layer gradient as raw float bits, so the
// comparison is exact equality — not a tolerance.
func gradBits(net *nn.Network) [][]uint64 {
	layers := net.KernelLayers()
	out := make([][]uint64, len(layers))
	for i, l := range layers {
		d := l.Weight().Grad.Data()
		bits := make([]uint64, len(d))
		for j, v := range d {
			bits[j] = math.Float64bits(v)
		}
		out[i] = bits
	}
	return out
}

// buildDegenerateNet is buildNet with every sample of the local batch
// identical (same row, same label): the captured Gram kernel is exactly
// rank 1, the worst case for a sketched interpolative decomposition.
func buildDegenerateNet(rank, mPer, in, hid, out int) *nn.Network {
	rng := mat.NewRNG(400)
	net := nn.NewNetwork(nn.Vec(in), rng,
		nn.NewLinear(hid), nn.NewReLU(),
		nn.NewLinear(hid), nn.NewReLU(),
		nn.NewLinear(out))
	net.SetCapture(true)
	drng := mat.NewRNG(500 + 31*uint64(rank))
	row := mat.RandN(drng, 1, in, 1)
	x := mat.NewDense(mPer, in)
	for i := 0; i < mPer; i++ {
		copy(x.Row(i), row.Row(0))
	}
	labels := make([]int, mPer) // all the same class
	logits := net.Forward(x, true)
	_, g := nn.SoftmaxCrossEntropy{}.Forward(logits, nn.Target{Labels: labels})
	net.ZeroGrad()
	net.Backward(g)
	return net
}

// runGrads executes one optimizer pass on p ranks and returns the
// preconditioned gradients as [rank][layer][elem] bits. wrap, when non-nil,
// layers chaos/validation Comms over each cluster worker.
func runGrads(p int, build optBuilder, wrap func(*dist.Worker) dist.Comm) [][][]uint64 {
	return runGradsOn(p, buildNet, build, wrap)
}

// runGradsOn is runGrads with an explicit per-rank network builder, so
// parity legs can run over pathological batches as well as healthy ones.
func runGradsOn(p int, mknet func(rank, mPer, in, hid, out int) *nn.Network,
	build optBuilder, wrap func(*dist.Worker) dist.Comm) [][][]uint64 {
	const mPer, in, hid, out = 8, 5, 6, 3
	res := make([][][]uint64, p)
	if p == 1 {
		net := mknet(0, mPer, in, hid, out)
		o := build(net, dist.Local())
		o.Update()
		o.Precondition()
		res[0] = gradBits(net)
		return res
	}
	cluster := dist.NewCluster(p)
	cluster.Run(func(w *dist.Worker) {
		comm := dist.Comm(w)
		if wrap != nil {
			comm = wrap(w)
		}
		net := mknet(w.Rank, mPer, in, hid, out)
		o := build(net, comm)
		o.Update()
		o.Precondition()
		res[w.Rank] = gradBits(net)
	})
	return res
}

func compareBits(t *testing.T, seq, par [][][]uint64) {
	t.Helper()
	for r := range seq {
		if len(seq[r]) != len(par[r]) {
			t.Fatalf("rank %d: layer counts differ (%d vs %d)", r, len(seq[r]), len(par[r]))
		}
		for l := range seq[r] {
			for j := range seq[r][l] {
				if seq[r][l][j] != par[r][l][j] {
					t.Fatalf("rank %d layer %d elem %d: sequential %016x vs parallel %016x",
						r, l, j, seq[r][l][j], par[r][l][j])
				}
			}
		}
	}
}

func hyloBuilder(mode core.Mode) optBuilder {
	return func(net *nn.Network, comm dist.Comm) precon {
		h := core.NewHyLo(net, 0.3, 0.5, comm, nil, mat.NewRNG(77))
		h.Policy = core.FixedSwitch{Mode: mode}
		h.OnEpochStart(0, false)
		return h
	}
}

// sketchBuilder is hyloBuilder pinned to KID mode with the sketched
// randomized-ID fast path enabled.
func sketchBuilder(sk core.Sketch) optBuilder {
	return func(net *nn.Network, comm dist.Comm) precon {
		h := core.NewHyLo(net, 0.3, 0.5, comm, nil, mat.NewRNG(79))
		h.Policy = core.FixedSwitch{Mode: core.ModeKID}
		h.Sketch = sk
		h.Oversample = 4
		h.OnEpochStart(0, false)
		return h
	}
}

func parityCases() []struct {
	name  string
	build optBuilder
} {
	return []struct {
		name  string
		build optBuilder
	}{
		{"hylo-kid", hyloBuilder(core.ModeKID)},
		{"hylo-kid-randomized", func(net *nn.Network, comm dist.Comm) precon {
			h := core.NewHyLo(net, 0.3, 0.5, comm, nil, mat.NewRNG(78))
			h.Policy = core.FixedSwitch{Mode: core.ModeKID}
			h.RandomizedKID = true
			h.OnEpochStart(0, false)
			return h
		}},
		{"hylo-kid-sketch-gauss", sketchBuilder(core.SketchGauss)},
		{"hylo-kid-sketch-srht", sketchBuilder(core.SketchSRHT)},
		{"hylo-kis", hyloBuilder(core.ModeKIS)},
		{"kfac", func(net *nn.Network, comm dist.Comm) precon {
			return kfac.NewKFAC(net, 0.3, comm, nil)
		}},
		{"sngd", func(net *nn.Network, comm dist.Comm) precon {
			return sngd.New(net, 0.3, comm, nil)
		}},
	}
}

// TestSchedParity: layer-parallel execution must be bit-identical to the
// sequential path for every distributed optimizer, single-process and on a
// 4-worker simulated cluster.
func TestSchedParity(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, c := range parityCases() {
			c := c
			p := p
			t.Run(c.name+"/p="+string(rune('0'+p)), func(t *testing.T) {
				setWorkers(t, 1)
				seq := runGrads(p, c.build, nil)
				setWorkers(t, 4)
				par := runGrads(p, c.build, nil)
				compareBits(t, seq, par)
			})
		}
	}
}

// TestSchedParityKBFGS covers the comm-free quasi-Newton baseline: two
// update/precondition rounds (the first only snapshots, so curvature pairs
// exist by the second) must match bitwise across worker counts.
func TestSchedParityKBFGS(t *testing.T) {
	run := func() [][]uint64 {
		net := buildNet(0, 8, 5, 6, 3)
		k := kbfgs.NewKBFGSL(net, 0.1, 4)
		k.Update()
		// Deterministically move the weights so the second harvest yields
		// nonzero (s, y) pairs.
		for _, l := range net.KernelLayers() {
			w := l.Weight()
			wd, gd := w.W.Data(), w.Grad.Data()
			for j := range wd {
				wd[j] -= 0.05 * gd[j]
			}
		}
		k.Update()
		k.Precondition()
		return gradBits(net)
	}
	setWorkers(t, 1)
	seq := run()
	setWorkers(t, 4)
	par := run()
	compareBits(t, [][][]uint64{seq}, [][][]uint64{par})
}

// TestSchedParityChaos repeats the cluster parity check with fault
// injection on every collective — bit-flips, stragglers, and degenerate
// gather payloads (which trip the solver degradation ladder). The same
// FaultPlan drives both legs, and chaos draws happen per collective in
// call order, so parity here proves the parallel scheduler issues the
// EXACT canonical collective sequence, not merely an equivalent one. A
// sequence validator runs underneath the injector on both legs.
func TestSchedParityChaos(t *testing.T) {
	plan := dist.FaultPlan{
		Seed:           13,
		PanicStep:      -1,
		BitFlipProb:    0.4,
		StragglerProb:  0.3,
		StragglerDelay: 50 * time.Microsecond,
		DegenerateKind: "dup",
		DegenerateProb: 0.15,
	}
	for _, c := range parityCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := func() [][][]uint64 {
				chk := dist.NewSeqChecker(func(msg string) { t.Error(msg) })
				return runGrads(4, c.build, func(w *dist.Worker) dist.Comm {
					return dist.NewFaultInjector(chk.Check(w), plan)
				})
			}
			setWorkers(t, 1)
			seq := run()
			setWorkers(t, 4)
			par := run()
			compareBits(t, seq, par)
		})
	}
}

// TestSchedParitySketchFallback forces the sketched KID onto a degenerate
// (exactly rank-1) batch on every rank: the condition guard must trip, the
// ladder must land on the exact-KID rung, and the fallback must be
// collective-consistent — the sequential and layer-parallel legs, and all
// ranks within each leg, stay bit-identical even while every layer is being
// redone on the exact path.
func TestSchedParitySketchFallback(t *testing.T) {
	for _, sk := range []core.Sketch{core.SketchGauss, core.SketchSRHT} {
		sk := sk
		t.Run(sk.String(), func(t *testing.T) {
			numerics.Reset()
			defer numerics.Reset()
			build := sketchBuilder(sk)
			setWorkers(t, 1)
			seq := runGradsOn(4, buildDegenerateNet, build, nil)
			fired := numerics.Default().Snapshot().Fallbacks["hylo.kid.sketch"][numerics.RungExact]
			if fired == 0 {
				t.Fatal("degenerate batch did not trip the sketch guard")
			}
			setWorkers(t, 4)
			par := runGradsOn(4, buildDegenerateNet, build, nil)
			compareBits(t, seq, par)
			for _, rank := range seq {
				for _, layer := range rank {
					for _, bits := range layer {
						v := math.Float64frombits(bits)
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Fatal("fallback produced non-finite gradient")
						}
					}
				}
			}
		})
	}
}
