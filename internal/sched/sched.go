// Package sched is the execution scheduler for layer-parallel
// preconditioning: it pipelines the per-layer stages of a second-order
// update (local factorization → gather → solve → broadcast → store) across
// a bounded worker pool and overlaps communication with computation, while
// keeping results bit-identical to the sequential path.
//
// # Determinism
//
// Three rules make the parallel schedule reproduce the sequential one
// bit for bit:
//
//  1. Compute stages touch only per-layer state; anything consuming a
//     shared RNG either runs before the pipeline (KIS sampling) or is
//     declared Ordered, which serializes that stage in ascending layer
//     order (randomized KID sketches).
//  2. All collectives are issued by ONE dispatcher goroutine in a fixed
//     canonical order — stage-major: for each comm stage in pipeline
//     order, layers ascending. Every rank submits the identical sequence,
//     so barrier sequences match, the sequence validator stays green, and
//     chaos-injection draws (one per collective, in call order) align
//     exactly with a sequential run of the same canonical order.
//  3. Parallel kernels under the stages (GEMM, row loops) produce results
//     independent of their worker count, and the shared token pool only
//     changes worker counts, never arithmetic order.
//
// # Token pool
//
// One process-wide TokenPool (capacity max(workers, GOMAXPROCS)) is shared
// between stage execution and mat's parallel kernels via mat.Limiter:
// every running stage holds a token, and a GEMM inside a stage may only
// add workers by borrowing spare tokens non-blockingly. Nested parallelism
// therefore never exceeds the pool capacity (TestTokenBudget).
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mat"
	"repro/internal/telemetry"
)

var (
	workersVal atomic.Int64
	pool       atomic.Pointer[TokenPool]
)

func init() { SetWorkers(runtime.GOMAXPROCS(0)) }

// SetWorkers sets the scheduler's per-optimizer stage parallelism: n > 1
// enables the layer-parallel pipelines, n = 1 selects the legacy
// sequential path. It also rebuilds the process-wide token pool (capacity
// max(n, GOMAXPROCS)) and installs it as mat's parallel-kernel limiter.
// Call between updates, not concurrently with a running pipeline.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	workersVal.Store(int64(n))
	c := runtime.GOMAXPROCS(0)
	if n > c {
		c = n
	}
	p := NewTokenPool(c)
	pool.Store(p)
	mat.SetParallelLimiter(p)
}

// Workers returns the configured stage parallelism (≥ 1).
func Workers() int { return int(workersVal.Load()) }

// Tokens returns the current process-wide token pool.
func Tokens() *TokenPool { return pool.Load() }

// Stage is one step of a per-layer preconditioner pipeline. Stages run in
// slice order for each layer, with Fn(i) invoked once per layer index.
type Stage struct {
	// Name labels the stage in diagnostics.
	Name string
	// Comm marks a communication stage: its Fn must only SUBMIT async
	// collectives (dist.AsyncComm StartX) and return without blocking on
	// results. Comm stages are executed by the single dispatcher goroutine
	// in canonical stage-major order.
	Comm bool
	// Ordered serializes a compute stage in ascending layer order (layer
	// i's Fn runs only after layer i−1's). Required for stages that
	// consume a shared RNG.
	Ordered bool
	// Wait, when non-nil, runs before Fn WITHOUT holding a compute token:
	// the place to block on futures from an earlier comm stage, so tokens
	// are not parked on communication waits.
	Wait func(layer int)
	// Fn does the stage's work for one layer.
	Fn func(layer int)
}

// Engine runs stage pipelines. Each optimizer owns one Engine so its done
// matrix and worker slots are reused across updates (steady-state
// allocation stays bounded). An Engine must not be copied after first use.
type Engine struct {
	mu     sync.Mutex
	cond   *sync.Cond
	done   [][]bool
	abort  bool
	failed any

	slots  chan struct{}
	slotsW int
}

// Run executes the pipeline over n layers. With Workers() == 1 (or a
// single layer) it degrades to the inline sequential path: every stage run
// on the calling goroutine in the same canonical stage-major order, with
// no goroutines, channels, or tokens — the `-sched-workers=1` legacy
// schedule. A panic in any stage is re-raised on the caller, preserving
// the worker-death semantics RunWithRecovery and RunElastic rely on.
func Run(e *Engine, n int, stages []Stage) {
	if n <= 0 || len(stages) == 0 {
		return
	}
	if Workers() <= 1 || n == 1 {
		for s := range stages {
			st := &stages[s]
			for i := 0; i < n; i++ {
				if st.Wait != nil {
					st.Wait(i)
				}
				st.Fn(i)
			}
		}
		return
	}
	e.run(n, stages)
}

func (e *Engine) run(n int, stages []Stage) {
	w := Workers()
	if e.cond == nil {
		e.cond = sync.NewCond(&e.mu)
	}
	e.resize(len(stages), n)
	e.abort = false
	e.failed = nil
	if e.slotsW != w {
		e.slots = make(chan struct{}, w)
		e.slotsW = w
	}
	abortCh := make(chan struct{})
	tokens := Tokens()

	var busy atomic.Int64
	t0 := time.Now()
	var wg sync.WaitGroup
	wg.Add(n + 1)

	// One goroutine per layer walks that layer's compute stages in order;
	// cross-layer and comm dependencies are expressed through the done
	// matrix. Concurrency is bounded by the worker slots (stage fan-out)
	// and the global token pool (machine-wide compute budget).
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			for s := range stages {
				st := &stages[s]
				if st.Comm {
					continue
				}
				if s > 0 && !e.waitDone(s-1, i) {
					return
				}
				if st.Ordered && i > 0 && !e.waitDone(s, i-1) {
					return
				}
				if st.Wait != nil && !e.runHook(st.Wait, i, abortCh) {
					return
				}
				select {
				case e.slots <- struct{}{}:
				case <-abortCh:
					return
				}
				if !tokens.Acquire(abortCh) {
					<-e.slots
					return
				}
				t := time.Now()
				ok := e.runHook(st.Fn, i, abortCh)
				busy.Add(int64(time.Since(t)))
				tokens.Release(1)
				<-e.slots
				if !ok {
					return
				}
				e.markDone(s, i)
			}
		}(i)
	}

	// The comm dispatcher: the only goroutine issuing collectives, in the
	// canonical stage-major order. Submission is non-blocking (async
	// executor), so a gather for layer i+1 enters the wire while layer i's
	// solve still runs — the comm/compute overlap this package exists for.
	go func() {
		defer wg.Done()
		for s := range stages {
			st := &stages[s]
			if !st.Comm {
				continue
			}
			for i := 0; i < n; i++ {
				if s > 0 && !e.waitDone(s-1, i) {
					return
				}
				if st.Wait != nil && !e.runHook(st.Wait, i, abortCh) {
					return
				}
				t := time.Now()
				if !e.runHook(st.Fn, i, abortCh) {
					return
				}
				busy.Add(int64(time.Since(t)))
				e.markDone(s, i)
			}
		}
	}()

	wg.Wait()
	if telemetry.Enabled() {
		if over := busy.Load() - int64(time.Since(t0)); over > 0 {
			telemetry.IncCounter(telemetry.MetricSchedOverlap, over)
		}
	}
	if e.failed != nil {
		panic(e.failed)
	}
}

func (e *Engine) resize(stages, n int) {
	if len(e.done) != stages || (stages > 0 && len(e.done[0]) != n) {
		e.done = make([][]bool, stages)
		for s := range e.done {
			e.done[s] = make([]bool, n)
		}
		return
	}
	for s := range e.done {
		row := e.done[s]
		for i := range row {
			row[i] = false
		}
	}
}

func (e *Engine) markDone(s, i int) {
	e.mu.Lock()
	e.done[s][i] = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

func (e *Engine) waitDone(s, i int) bool {
	e.mu.Lock()
	for !e.done[s][i] && !e.abort {
		e.cond.Wait()
	}
	ok := !e.abort
	e.mu.Unlock()
	return ok
}

// fail records the first failure and wakes every waiter; later failures
// (cascading aborts) are dropped.
func (e *Engine) fail(r any, abortCh chan struct{}) {
	e.mu.Lock()
	if !e.abort {
		e.abort = true
		e.failed = r
		close(abortCh)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

func (e *Engine) runHook(fn func(int), i int, abortCh chan struct{}) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.fail(r, abortCh)
			ok = false
		}
	}()
	fn(i)
	return true
}
