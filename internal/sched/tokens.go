package sched

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// TokenPool is the process-wide counting semaphore that bounds compute
// parallelism across BOTH the scheduler's stage workers and mat's parallel
// kernels: each running stage holds one token, and a GEMM nested under a
// stage may only add workers by acquiring extra tokens non-blockingly. The
// invariant — tokens in use never exceed the pool capacity — is what keeps
// nested parallelism from oversubscribing cores; see TestTokenBudget.
//
// TokenPool implements mat.Limiter.
type TokenPool struct {
	sem   chan struct{}
	inUse atomic.Int64
	high  atomic.Int64
}

// NewTokenPool returns a pool of n tokens (n ≥ 1).
func NewTokenPool(n int) *TokenPool {
	if n < 1 {
		n = 1
	}
	return &TokenPool{sem: make(chan struct{}, n)}
}

// Cap returns the pool capacity.
func (p *TokenPool) Cap() int { return cap(p.sem) }

// InUse returns the number of tokens currently checked out.
func (p *TokenPool) InUse() int { return int(p.inUse.Load()) }

// HighWater returns the maximum of InUse over the pool's lifetime.
func (p *TokenPool) HighWater() int { return int(p.high.Load()) }

func (p *TokenPool) note(delta int) {
	v := p.inUse.Add(int64(delta))
	for {
		h := p.high.Load()
		if v <= h || p.high.CompareAndSwap(h, v) {
			break
		}
	}
	if telemetry.Enabled() {
		telemetry.SetGauge(telemetry.MetricSchedTokensInUse, float64(v))
	}
}

// Acquire blocks until one token is available. cancel, when non-nil, aborts
// the wait; Acquire reports whether the token was obtained.
func (p *TokenPool) Acquire(cancel <-chan struct{}) bool {
	if cancel == nil {
		p.sem <- struct{}{}
		p.note(1)
		return true
	}
	select {
	case p.sem <- struct{}{}:
		p.note(1)
		return true
	case <-cancel:
		return false
	}
}

// TryAcquire implements mat.Limiter: grant up to n tokens without
// blocking, returning the number granted.
func (p *TokenPool) TryAcquire(n int) int {
	granted := 0
	for granted < n {
		select {
		case p.sem <- struct{}{}:
			granted++
		default:
			if granted > 0 {
				p.note(granted)
			}
			return granted
		}
	}
	if granted > 0 {
		p.note(granted)
	}
	return granted
}

// Release implements mat.Limiter: return n tokens to the pool. The
// counter decrements BEFORE capacity is returned (and increments after it
// is consumed, in Acquire/TryAcquire), so the observed InUse/HighWater
// never exceeds the number of tokens genuinely outstanding — and therefore
// never exceeds the pool capacity.
func (p *TokenPool) Release(n int) {
	p.note(-n)
	for i := 0; i < n; i++ {
		<-p.sem
	}
}
