package sched

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/mat"
)

// withWorkers runs fn with the scheduler configured for n stage workers and
// GOMAXPROCS procs, restoring both afterwards (the token pool is rebuilt by
// SetWorkers, so restore order matters: procs first, then workers).
func withWorkers(t *testing.T, n, procs int, fn func()) {
	t.Helper()
	oldProcs := runtime.GOMAXPROCS(procs)
	oldWorkers := Workers()
	SetWorkers(n)
	defer func() {
		runtime.GOMAXPROCS(oldProcs)
		SetWorkers(oldWorkers)
	}()
	fn()
}

// trace records stage executions; safe for concurrent append because every
// recording site is serialized by design (comm dispatcher, Ordered stage) or
// guarded by its own mutex.
type trace struct {
	mu sync.Mutex
	ev []string
}

func (tr *trace) add(ev string) {
	tr.mu.Lock()
	tr.ev = append(tr.ev, ev)
	tr.mu.Unlock()
}

func pipelineStages(comm *trace, perLayer []*trace) []Stage {
	return []Stage{
		{Name: "factor", Fn: func(i int) { perLayer[i].add("factor") }},
		{Name: "gather", Comm: true, Fn: func(i int) { comm.add(fmt.Sprintf("g%d", i)) }},
		{Name: "solve", Fn: func(i int) { perLayer[i].add("solve") }},
		{Name: "bcast", Comm: true, Fn: func(i int) { comm.add(fmt.Sprintf("b%d", i)) }},
		{Name: "store", Fn: func(i int) { perLayer[i].add("store") }},
	}
}

func checkCanonical(t *testing.T, n int, comm *trace, perLayer []*trace) {
	t.Helper()
	var want []string
	for i := 0; i < n; i++ {
		want = append(want, fmt.Sprintf("g%d", i))
	}
	for i := 0; i < n; i++ {
		want = append(want, fmt.Sprintf("b%d", i))
	}
	if len(comm.ev) != len(want) {
		t.Fatalf("comm sequence %v, want %v", comm.ev, want)
	}
	for k := range want {
		if comm.ev[k] != want[k] {
			t.Fatalf("comm sequence %v, want %v", comm.ev, want)
		}
	}
	for i, tr := range perLayer {
		if len(tr.ev) != 3 || tr.ev[0] != "factor" || tr.ev[1] != "solve" || tr.ev[2] != "store" {
			t.Fatalf("layer %d stage order %v", i, tr.ev)
		}
	}
}

// TestRunCanonicalCommOrder: both the sequential path and the parallel
// dispatcher must issue collectives in the same stage-major canonical order
// (all gathers in layer order, then all broadcasts) with per-layer compute
// stages in pipeline order.
func TestRunCanonicalCommOrder(t *testing.T) {
	const n = 5
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			withWorkers(t, workers, 4, func() {
				var comm trace
				perLayer := make([]*trace, n)
				for i := range perLayer {
					perLayer[i] = &trace{}
				}
				var e Engine
				Run(&e, n, pipelineStages(&comm, perLayer))
				checkCanonical(t, n, &comm, perLayer)
			})
		})
	}
}

// TestRunEngineReuse: consecutive Runs on one engine must reset the done
// matrix, including after a shape change.
func TestRunEngineReuse(t *testing.T) {
	withWorkers(t, 4, 4, func() {
		var e Engine
		for _, n := range []int{4, 4, 7, 2} {
			var comm trace
			perLayer := make([]*trace, n)
			for i := range perLayer {
				perLayer[i] = &trace{}
			}
			Run(&e, n, pipelineStages(&comm, perLayer))
			checkCanonical(t, n, &comm, perLayer)
		}
	})
}

// TestRunOrderedStage: an Ordered stage must execute in ascending layer
// order even with many workers — the guarantee shared-RNG stages rely on.
func TestRunOrderedStage(t *testing.T) {
	const n = 8
	withWorkers(t, 4, 4, func() {
		var got []int // appended only from the Ordered stage, serialized by design
		stages := []Stage{
			{Name: "sketch", Ordered: true, Fn: func(i int) { got = append(got, i) }},
			{Name: "solve", Fn: func(i int) {}},
		}
		var e Engine
		Run(&e, n, stages)
		if len(got) != n {
			t.Fatalf("ordered stage ran %d times, want %d", len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("ordered stage sequence %v", got)
			}
		}
	})
}

// TestRunWaitHook: the Wait hook must run before Fn for the same layer and
// stage, after the previous stage completed.
func TestRunWaitHook(t *testing.T) {
	const n = 6
	withWorkers(t, 4, 4, func() {
		perLayer := make([]*trace, n)
		for i := range perLayer {
			perLayer[i] = &trace{}
		}
		stages := []Stage{
			{Name: "a", Fn: func(i int) { perLayer[i].add("a") }},
			{
				Name: "b",
				Wait: func(i int) { perLayer[i].add("wait") },
				Fn:   func(i int) { perLayer[i].add("b") },
			},
		}
		var e Engine
		Run(&e, n, stages)
		for i, tr := range perLayer {
			if len(tr.ev) != 3 || tr.ev[0] != "a" || tr.ev[1] != "wait" || tr.ev[2] != "b" {
				t.Fatalf("layer %d order %v", i, tr.ev)
			}
		}
	})
}

// TestRunPanicPropagates: a panic in any stage aborts the pipeline and
// re-raises on the caller; the engine stays usable afterwards.
func TestRunPanicPropagates(t *testing.T) {
	const n = 6
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			withWorkers(t, workers, 4, func() {
				var e Engine
				stages := []Stage{
					{Name: "ok", Fn: func(i int) {}},
					{Name: "boom", Fn: func(i int) {
						if i == 3 {
							panic("stage failure")
						}
					}},
				}
				func() {
					defer func() {
						if r := recover(); r != "stage failure" {
							t.Errorf("recovered %v, want stage failure", r)
						}
					}()
					Run(&e, n, stages)
					t.Error("Run should have panicked")
				}()
				// Engine must recover for the next update.
				ran := 0
				var mu sync.Mutex
				Run(&e, n, []Stage{{Name: "ok", Fn: func(i int) {
					mu.Lock()
					ran++
					mu.Unlock()
				}}})
				if ran != n {
					t.Fatalf("post-failure run executed %d layers, want %d", ran, n)
				}
			})
		})
	}
}

// TestRunCommPanicAborts: a panic raised at collective submission (the
// dispatcher) must abort compute workers blocked on later stages instead of
// deadlocking.
func TestRunCommPanicAborts(t *testing.T) {
	const n = 4
	withWorkers(t, 4, 4, func() {
		var e Engine
		stages := []Stage{
			{Name: "factor", Fn: func(i int) {}},
			{Name: "gather", Comm: true, Fn: func(i int) {
				if i == 1 {
					panic("comm failure")
				}
			}},
			{Name: "solve", Fn: func(i int) {}},
		}
		defer func() {
			if r := recover(); r != "comm failure" {
				t.Errorf("recovered %v, want comm failure", r)
			}
		}()
		Run(&e, n, stages)
		t.Error("Run should have panicked")
	})
}

// TestRunInlineAllocFree: the workers=1 path must not allocate — it is the
// legacy sequential schedule and sits on the hot path of every update.
func TestRunInlineAllocFree(t *testing.T) {
	withWorkers(t, 1, 1, func() {
		var e Engine
		stages := []Stage{
			{Name: "a", Fn: func(i int) {}},
			{Name: "b", Wait: func(i int) {}, Fn: func(i int) {}},
		}
		allocs := testing.AllocsPerRun(100, func() { Run(&e, 8, stages) })
		if allocs > 0 {
			t.Fatalf("inline Run allocated %.1f times per run", allocs)
		}
	})
}

// TestTokenBudget: nested parallelism — stage workers plus the parallel GEMM
// they invoke — must never exceed the shared pool's capacity, and mat's
// kernels must draw their extra workers from this pool (the limiter wiring).
func TestTokenBudget(t *testing.T) {
	withWorkers(t, 4, 8, func() {
		p := Tokens()
		if p.Cap() != 8 {
			t.Fatalf("pool cap %d, want max(workers, GOMAXPROCS) = 8", p.Cap())
		}

		// Solo GEMM: with all tokens free, the packed kernel must borrow
		// extra workers from the scheduler pool — proof of the wiring.
		a := mat.NewDense(192, 192)
		b := mat.NewDense(192, 192)
		dst := mat.NewDense(192, 192)
		for i := range a.Data() {
			a.Data()[i] = float64(i % 7)
			b.Data()[i] = float64(i % 5)
		}
		mat.MulInto(dst, a, b)
		if p.HighWater() < 2 {
			t.Fatalf("solo GEMM high-water %d: mat did not borrow from the scheduler pool", p.HighWater())
		}
		if p.InUse() != 0 {
			t.Fatalf("tokens leaked: %d in use after solo GEMM", p.InUse())
		}

		// Stage workers running GEMMs concurrently: the combined worker count
		// is bounded by the pool capacity. Each layer writes its own output.
		dsts := make([]*mat.Dense, 8)
		for i := range dsts {
			dsts[i] = mat.NewDense(192, 192)
		}
		var e Engine
		stages := []Stage{
			{Name: "gemm", Fn: func(i int) { mat.MulInto(dsts[i], a, b) }},
			{Name: "gemm2", Fn: func(i int) { mat.GramInto(dsts[i], a) }},
		}
		Run(&e, 8, stages)
		if hw := p.HighWater(); hw > p.Cap() {
			t.Fatalf("high-water %d exceeds pool capacity %d", hw, p.Cap())
		}
		if p.InUse() != 0 {
			t.Fatalf("tokens leaked: %d in use after pipeline", p.InUse())
		}
	})
}
