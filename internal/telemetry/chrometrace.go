package telemetry

import (
	"encoding/json"
	"io"
)

// chromeEvent mirrors one entry of the Chrome trace-event JSON format
// (the "JSON Array with metadata" flavor loadable in chrome://tracing and
// Perfetto). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders events as Chrome trace-event JSON. Complete
// spans become "X" events with a duration; instants become thread-scoped
// "i" events. Labels map to args, so Perfetto shows mode/layer/epoch in
// the selection panel. Output is deterministic for a fixed event slice
// (struct field order plus encoding/json's sorted map keys).
func WriteChromeTrace(w io.Writer, events []SpanEvent) error {
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Ph:   string(rune(e.Kind)),
			TS:   float64(e.Time.Nanoseconds()) / 1e3,
			PID:  0,
			TID:  e.TID,
		}
		if e.Kind == KindComplete {
			d := float64(e.Dur.Nanoseconds()) / 1e3
			ce.Dur = &d
		}
		if e.Kind == KindInstant {
			ce.S = "t" // thread scope
		}
		if len(e.Labels) > 0 {
			ce.Args = make(map[string]string, len(e.Labels))
			for _, l := range e.Labels {
				ce.Args[l.Key] = l.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
