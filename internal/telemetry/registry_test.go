package telemetry

import (
	"sync"
	"testing"
)

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", Label{Key: "op", Value: "get"})
	b := r.Counter("hits", Label{Key: "op", Value: "get"})
	if a != b {
		t.Fatal("same name+labels must resolve to the same counter")
	}
	other := r.Counter("hits", Label{Key: "op", Value: "put"})
	if a == other {
		t.Fatal("different labels must resolve to different counters")
	}
	// Label order must not matter.
	x := r.Gauge("g", Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	y := r.Gauge("g", Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if x != y {
		t.Fatal("label order must not change identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m")
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("shared counter = %d; want %d", got, goroutines*perG)
	}
}

func TestRegistrySnapshotOrderAndReset(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zeta").Set(1)
	r.Counter("alpha").Add(2)
	r.Histogram("mid", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d; want 3", len(snap))
	}
	wantOrder := []string{"alpha", "mid", "zeta"}
	for i, w := range wantOrder {
		if snap[i].Name != w {
			t.Fatalf("snapshot[%d] = %q; want %q", i, snap[i].Name, w)
		}
	}
	if snap[0].Kind != KindCounter || snap[0].Value != 2 {
		t.Fatalf("counter point wrong: %+v", snap[0])
	}
	if snap[1].Hist == nil || snap[1].Hist.Count != 1 || snap[1].Hist.Sum != 0.5 {
		t.Fatalf("histogram point wrong: %+v", snap[1].Hist)
	}
	r.Reset()
	if len(r.Snapshot()) != 0 {
		t.Fatal("reset did not clear the registry")
	}
}
