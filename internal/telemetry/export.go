package telemetry

import (
	"fmt"
	"os"
)

// ExportFiles writes the default instance's collected data to files:
// tracePath gets Chrome trace-event JSON, metricsPath gets Prometheus
// text exposition, eventsPath gets the JSONL event log. Empty paths are
// skipped. This is the shared exit hook of the CLIs' -trace/-metrics
// flags.
func ExportFiles(tracePath, metricsPath, eventsPath string) error {
	t := Default()
	write := func(path, what string, fn func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("telemetry: %s: %w", what, err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return fmt.Errorf("telemetry: %s: %w", what, err)
		}
		return f.Close()
	}
	events := t.Trace.Events()
	if err := write(tracePath, "chrome trace", func(f *os.File) error {
		return WriteChromeTrace(f, events)
	}); err != nil {
		return err
	}
	if err := write(metricsPath, "prometheus metrics", func(f *os.File) error {
		return WritePrometheus(f, t.Metrics)
	}); err != nil {
		return err
	}
	return write(eventsPath, "jsonl events", func(f *os.File) error {
		return WriteJSONL(f, events)
	})
}
