package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates metric types in snapshots.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry holds named metrics. A metric's identity is its name plus the
// canonical (sorted) label set; the first Counter/Gauge/Histogram call
// for an identity creates it and later calls return the same instance,
// so callers may either cache the pointer or re-resolve on each use.
// All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

type entry struct {
	name   string
	labels []Label
	kind   Kind
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// canonLabels returns a sorted copy of labels.
func canonLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	return out
}

func metricKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte(0xfe)
		b.WriteString(l.Value)
	}
	return b.String()
}

func (r *Registry) lookup(name string, labels []Label, kind Kind) (*entry, []Label, string) {
	canon := canonLabels(labels)
	key := metricKey(name, canon)
	r.mu.RLock()
	e := r.entries[key]
	r.mu.RUnlock()
	if e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e, canon, key
	}
	return nil, canon, key
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	e, canon, key := r.lookup(name, labels, KindCounter)
	if e == nil {
		e = r.create(key, &entry{name: name, labels: canon, kind: KindCounter, ctr: &Counter{}})
	}
	return e.ctr
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	e, canon, key := r.lookup(name, labels, KindGauge)
	if e == nil {
		e = r.create(key, &entry{name: name, labels: canon, kind: KindGauge, gauge: &Gauge{}})
	}
	return e.gauge
}

// Histogram returns the histogram for name+labels, creating it with the
// given bounds (nil → TimeBuckets) on first use; bounds are ignored when
// the histogram already exists.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	e, canon, key := r.lookup(name, labels, KindHistogram)
	if e == nil {
		e = r.create(key, &entry{name: name, labels: canon, kind: KindHistogram, hist: NewHistogram(bounds)})
	}
	return e.hist
}

// create installs fresh under the write lock, returning the winner if a
// racing goroutine registered the same identity first.
func (r *Registry) create(key string, fresh *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.entries[key]; e != nil {
		if e.kind != fresh.kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", fresh.name, e.kind, fresh.kind))
		}
		return e
	}
	r.entries[key] = fresh
	return fresh
}

// Reset drops every metric.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.entries = map[string]*entry{}
	r.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // finite upper bounds
	Counts []int64   // len(Bounds)+1; last is +Inf
	Sum    float64
	Count  int64
}

// Quantile estimates the q-quantile of the snapshot by linear
// interpolation inside the containing bucket — the same scheme as
// Histogram.Quantile, applied to a frozen copy. Returns 0 when empty.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s == nil || s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, cnt := range s.Counts {
		c := float64(cnt)
		if cum+c >= rank {
			if i == len(s.Bounds) { // +Inf bucket
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-cum)/c
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// MetricPoint is one metric in a Snapshot.
type MetricPoint struct {
	Name   string
	Labels []Label
	Kind   Kind
	// Value holds the counter (as float) or gauge value.
	Value float64
	// Hist is set for KindHistogram.
	Hist *HistogramSnapshot
}

// Snapshot returns every metric sorted by name, then canonical labels —
// the stable order the exporters emit.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()

	out := make([]MetricPoint, 0, len(entries))
	for _, e := range entries {
		p := MetricPoint{Name: e.name, Labels: e.labels, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			p.Value = float64(e.ctr.Value())
		case KindGauge:
			p.Value = e.gauge.Value()
		case KindHistogram:
			p.Hist = &HistogramSnapshot{
				Bounds: e.hist.Bounds(),
				Counts: e.hist.BucketCounts(),
				Sum:    e.hist.Sum(),
				Count:  e.hist.Count(),
			}
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return metricKey("", out[i].Labels) < metricKey("", out[j].Labels)
	})
	return out
}
