package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is the fixed event set behind the Chrome-trace golden
// file: two worker lanes, tagged spans, and an instant.
func goldenEvents() []SpanEvent {
	clk := &fakeClock{tick: 100 * time.Microsecond}
	tr := NewTracerAt(clk.now)
	tr.Record("factorization", 0, 0, 300*time.Microsecond,
		Label{Key: "mode", Value: "KID"}, Label{Key: "layer", Value: "0"})
	tr.Record("gather", 1, 300*time.Microsecond, 150*time.Microsecond,
		Label{Key: "mode", Value: "KID"}, Label{Key: "layer", Value: "0"})
	tr.Record("inversion", 0, 450*time.Microsecond, 2*time.Millisecond,
		Label{Key: "mode", Value: "KIS"}, Label{Key: "layer", Value: "1"})
	tr.Instant("hylo_mode_switch", 0,
		Label{Key: "from", Value: "KID"}, Label{Key: "to", Value: "KIS"})
	tr.Record("broadcast", 1, 2450*time.Microsecond, 75*time.Microsecond)
	return tr.Events()
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace output diverged from golden file\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// The golden file must itself be valid trace JSON.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(want, &parsed); err != nil {
		t.Fatalf("golden is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 5 {
		t.Fatalf("golden has %d events; want 5", len(parsed.TraceEvents))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", Label{Key: "op", Value: "get"}).Add(7)
	r.Gauge("loss").Set(0.125)
	h := r.Histogram("latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{op="get"} 7`,
		"# TYPE loss gauge",
		"loss 0.125",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 5.55",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestSanitizeNames(t *testing.T) {
	if got := sanitizeMetricName("phase:seconds-total"); got != "phase:seconds_total" {
		t.Fatalf("metric sanitize = %q", got)
	}
	if got := sanitizeLabelName("a:b c"); got != "a_b_c" {
		t.Fatalf("label sanitize = %q", got)
	}
	if got := sanitizeMetricName("9lives"); got != "_lives" {
		t.Fatalf("leading digit sanitize = %q", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	var b strings.Builder
	if err := WriteJSONL(&b, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d; want 5", len(lines))
	}
	var first jsonlEvent
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Name != "factorization" || first.Kind != "span" || first.Attrs["mode"] != "KID" {
		t.Fatalf("first line wrong: %+v", first)
	}
	var instant jsonlEvent
	if err := json.Unmarshal([]byte(lines[3]), &instant); err != nil {
		t.Fatal(err)
	}
	if instant.Kind != "instant" || instant.Attrs["to"] != "KIS" {
		t.Fatalf("instant line wrong: %+v", instant)
	}
}

func TestExportFiles(t *testing.T) {
	SetDefault(New())
	defer SetDefault(New())
	SetEnabled(true)
	defer SetEnabled(false)
	Span("phase", 0)()
	IncCounter("c", 1)
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.txt")
	events := filepath.Join(dir, "events.jsonl")
	if err := ExportFiles(trace, metrics, events); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{trace, metrics, events} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}
