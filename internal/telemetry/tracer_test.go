package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed tick per reading, making traces
// deterministic.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Duration
	tick time.Duration
}

func (f *fakeClock) now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.t
	f.t += f.tick
	return cur
}

func TestTracerSpanAndInstant(t *testing.T) {
	clk := &fakeClock{tick: time.Millisecond}
	tr := NewTracerAt(clk.now)
	end := tr.Span("factorization", 3, Label{Key: "mode", Value: "KID"})
	end()
	tr.Instant("failure", 1)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d; want 2", len(evs))
	}
	sp := evs[0]
	if sp.Kind != KindComplete || sp.Name != "factorization" || sp.TID != 3 {
		t.Fatalf("span event wrong: %+v", sp)
	}
	if sp.Time != 0 || sp.Dur != time.Millisecond {
		t.Fatalf("span timing wrong: start=%v dur=%v", sp.Time, sp.Dur)
	}
	if len(sp.Labels) != 1 || sp.Labels[0].Value != "KID" {
		t.Fatalf("span labels wrong: %+v", sp.Labels)
	}
	if evs[1].Kind != KindInstant || evs[1].Dur != 0 {
		t.Fatalf("instant event wrong: %+v", evs[1])
	}
}

func TestTracerBufferCapAndReset(t *testing.T) {
	tr := NewTracerAt(func() time.Duration { return 0 })
	tr.max = 4
	for i := 0; i < 10; i++ {
		tr.Instant("e", 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d; want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d; want 6", tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear buffer")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const goroutines, perG = 16, 100
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Span("work", g)()
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != goroutines*perG {
		t.Fatalf("len = %d; want %d", tr.Len(), goroutines*perG)
	}
}

func TestSummarize(t *testing.T) {
	clk := &fakeClock{tick: time.Millisecond}
	tr := NewTracerAt(clk.now)
	tr.Record("slow", 0, 0, 30*time.Millisecond)
	tr.Record("fast", 0, 0, time.Millisecond)
	tr.Record("fast", 0, 0, 3*time.Millisecond)
	tr.Instant("noise", 0) // instants are excluded
	stats := Summarize(tr.Events())
	if len(stats) != 2 {
		t.Fatalf("stats = %d; want 2", len(stats))
	}
	if stats[0].Name != "slow" || stats[0].Total != 30*time.Millisecond {
		t.Fatalf("top phase wrong: %+v", stats[0])
	}
	if stats[1].Count != 2 || stats[1].Mean() != 2*time.Millisecond || stats[1].Max != 3*time.Millisecond {
		t.Fatalf("fast stats wrong: %+v", stats[1])
	}
	var b strings.Builder
	WriteSummary(&b, stats, 1)
	out := b.String()
	if !strings.Contains(out, "slow") || strings.Contains(out, "fast") {
		t.Fatalf("top-1 summary wrong:\n%s", out)
	}
}

func TestGlobalHelpersDisabled(t *testing.T) {
	SetEnabled(false)
	fresh := New()
	SetDefault(fresh)
	defer SetDefault(New())
	Span("s", 0)()
	Instant("i", 0)
	IncCounter("c", 1)
	SetGauge("g", 1)
	Observe("h", 1)
	RecordSpan("r", 0, time.Millisecond)
	if fresh.Trace.Len() != 0 {
		t.Fatal("disabled telemetry recorded trace events")
	}
	if len(fresh.Metrics.Snapshot()) != 0 {
		t.Fatal("disabled telemetry recorded metrics")
	}
	SetEnabled(true)
	defer SetEnabled(false)
	Span("s", 0)()
	IncCounter("c", 2)
	if fresh.Trace.Len() != 1 {
		t.Fatal("enabled telemetry did not record the span")
	}
	if fresh.Metrics.Counter("c").Value() != 2 {
		t.Fatal("enabled telemetry did not record the counter")
	}
}
