package telemetry

import (
	"sync/atomic"
	"time"
)

// Telemetry bundles a metric registry with a tracer; the process-global
// default instance is what the instrumented packages (train, core, dist,
// kfac, sngd, kbfgs) write into when telemetry is enabled.
type Telemetry struct {
	Metrics *Registry
	Trace   *Tracer
}

// New returns a fresh, independent Telemetry instance.
func New() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Trace: NewTracer()}
}

var (
	enabled atomic.Bool
	global  atomic.Pointer[Telemetry]
)

func init() {
	global.Store(New())
}

// Default returns the process-global instance. It always exists; whether
// the instrumentation helpers write into it is governed by Enabled().
func Default() *Telemetry { return global.Load() }

// SetDefault replaces the process-global instance (tests, or a run that
// wants a fresh epoch for its trace clock).
func SetDefault(t *Telemetry) {
	if t == nil {
		t = New()
	}
	global.Store(t)
}

// Enabled reports whether the global instrumentation helpers record.
// This is the cheap guard hot paths check — one atomic load.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns global recording on or off.
func SetEnabled(on bool) { enabled.Store(on) }

// noopEnd is returned by Span when disabled so callers can
// unconditionally defer the result.
var noopEnd = func() {}

// Span opens a span on the default tracer and returns its end function;
// a no-op when telemetry is disabled.
func Span(name string, tid int, labels ...Label) func() {
	if !Enabled() {
		return noopEnd
	}
	return Default().Trace.Span(name, tid, labels...)
}

// RecordSpan records a just-ended region of the given duration on the
// default tracer when enabled — for call sites that already timed the
// region themselves (the preconditioners' phase timers). The start offset
// is reconstructed from the tracer clock's current reading.
func RecordSpan(name string, tid int, dur time.Duration, labels ...Label) {
	if !Enabled() {
		return
	}
	tr := Default().Trace
	end := tr.Now()
	tr.Record(name, tid, end-dur, dur, labels...)
}

// Instant records a point event on the default tracer when enabled.
func Instant(name string, tid int, labels ...Label) {
	if !Enabled() {
		return
	}
	Default().Trace.Instant(name, tid, labels...)
}

// IncCounter adds n to a default-registry counter when enabled.
func IncCounter(name string, n int64, labels ...Label) {
	if !Enabled() {
		return
	}
	Default().Metrics.Counter(name, labels...).Add(n)
}

// SetGauge stores v into a default-registry gauge when enabled.
func SetGauge(name string, v float64, labels ...Label) {
	if !Enabled() {
		return
	}
	Default().Metrics.Gauge(name, labels...).Set(v)
}

// Observe records v into a default-registry histogram (TimeBuckets
// bounds) when enabled.
func Observe(name string, v float64, labels ...Label) {
	if !Enabled() {
		return
	}
	Default().Metrics.Histogram(name, nil, labels...).Observe(v)
}

// Metric names shared by the instrumented packages, so exporter output
// and dashboards agree on one vocabulary.
const (
	// MetricCommBytes counts collective payload bytes per participant,
	// labeled op=allreduce|allgather|broadcast|reducescatter|ring.
	MetricCommBytes = "dist_comm_bytes_total"
	// MetricCommCalls counts collective invocations per participant.
	MetricCommCalls = "dist_comm_calls_total"
	// MetricWorkerFailures counts worker panics recovered by the cluster.
	MetricWorkerFailures = "dist_worker_failures_total"
	// MetricModeSwitches counts HyLo KID↔KIS transitions.
	MetricModeSwitches = "hylo_mode_switches_total"
	// MetricTrainIterations counts optimizer steps on rank 0.
	MetricTrainIterations = "train_iterations_total"
	// MetricTrainLoss is the latest epoch-mean training loss.
	MetricTrainLoss = "train_loss"
	// MetricTestMetric is the latest evaluation metric (accuracy/Dice).
	MetricTestMetric = "train_test_metric"
	// MetricEpoch is the current epoch index.
	MetricEpoch = "train_epoch"

	// MetricCkptWrites counts checkpoints published (atomic renames).
	MetricCkptWrites = "ckpt_writes_total"
	// MetricCkptRestores counts snapshots successfully loaded.
	MetricCkptRestores = "ckpt_restores_total"
	// MetricCkptCorrupt counts snapshots rejected by checksum/decode and
	// quarantined during load.
	MetricCkptCorrupt = "ckpt_corrupt_total"
	// MetricCkptErrors counts failed checkpoint writes (training continues).
	MetricCkptErrors = "ckpt_errors_total"
	// MetricCkptRetentionErrors counts snapshot deletions (and retention
	// sweeps) that failed — stale files accumulating on disk instead of
	// being reclaimed.
	MetricCkptRetentionErrors = "ckpt_retention_errors_total"
	// MetricFaultsInjected counts faults delivered by the chaos layer,
	// labeled kind=panic|bitflip|delay.
	MetricFaultsInjected = "dist_faults_injected_total"
	// MetricBarrierWatchdog counts barrier hangs converted into poisoning
	// by the watchdog timeout.
	MetricBarrierWatchdog = "dist_barrier_watchdog_total"
	// MetricRecoveries counts elastic restarts that reloaded a checkpoint
	// after a worker failure.
	MetricRecoveries = "train_recoveries_total"
	// MetricNonfiniteSkips counts iterations whose loss/gradient went
	// NaN/Inf, where the preconditioned update was skipped in favor of a
	// sanitized first-order fallback step.
	MetricNonfiniteSkips = "train_nonfinite_skips"

	// MetricNumericsRetries counts Levenberg-Marquardt damping-escalation
	// retries at solve sites, labeled site=<package.site>.
	MetricNumericsRetries = "numerics_damping_retries_total"
	// MetricNumericsFallbacks counts degradation-ladder firings, labeled
	// site=<package.site> and rung=damped-retry|kis|nystrom|diagonal|identity.
	MetricNumericsFallbacks = "numerics_fallbacks_total"
	// MetricNumericsScrubs counts non-finite values zeroed out of tensors
	// by the numerical-health plumbing.
	MetricNumericsScrubs = "numerics_nonfinite_scrubs_total"
	// MetricNumericsCond is the latest 1-norm condition estimate per solve
	// site, labeled site=<package.site>.
	MetricNumericsCond = "numerics_cond_estimate"
	// MetricKIDSketchNS accumulates nanoseconds spent in sketched KID
	// factorizations, labeled sketch=gauss|srht.
	MetricKIDSketchNS = "kid_sketch_ns"
	// MetricKIDSketchFallbacks counts sketched KID factorizations rejected
	// by the condition/residual guard and redone with the exact
	// interpolative decomposition, labeled sketch=gauss|srht.
	MetricKIDSketchFallbacks = "kid_sketch_fallbacks"

	// MetricSchedOverlap accumulates stage-busy nanoseconds in excess of
	// wall time per scheduled preconditioner update — the compute/comm time
	// hidden by layer-parallel execution (0 when running sequentially).
	MetricSchedOverlap = "sched_overlap_ns"
	// MetricSchedQueueDepth is the current number of async collectives
	// submitted but not yet executed on this process's comm executors.
	MetricSchedQueueDepth = "sched_queue_depth"
	// MetricSchedTokensInUse is the current number of compute tokens
	// checked out of the process-wide scheduler pool (stage workers plus
	// extra GEMM workers).
	MetricSchedTokensInUse = "sched_tokens_in_use"

	// MetricServeJobsRunning is the number of jobs currently executing on
	// the hylo-serve job pool (token held, training in progress).
	MetricServeJobsRunning = "serve_jobs_running"
	// MetricServeQueueDepth is the number of submitted jobs waiting in the
	// per-tenant fair queue (admitted but not yet dispatched).
	MetricServeQueueDepth = "serve_queue_depth"
	// MetricServeJobDuration is a histogram of job wall-clock durations in
	// nanoseconds (dispatch to terminal state), labeled
	// state=done|failed|cancelled.
	MetricServeJobDuration = "serve_job_duration_ns"
	// MetricServeJobsTotal counts jobs reaching a terminal state, labeled
	// state=done|failed|cancelled.
	MetricServeJobsTotal = "serve_jobs_total"
	// MetricServeJobsRecovered counts jobs re-enqueued by the restart
	// recovery scan, labeled kind=resumed|restart|requeued.
	MetricServeJobsRecovered = "serve_jobs_recovered_total"
	// MetricServePreemptions counts running jobs checkpoint-preempted in
	// favor of a higher-priority submission.
	MetricServePreemptions = "serve_preemptions_total"
	// MetricServeGCReclaimed accumulates artifact bytes deleted by the
	// retention sweeper.
	MetricServeGCReclaimed = "serve_gc_bytes_reclaimed_total"

	// MetricNetBytes counts TCP transport bytes framed on/off the wire,
	// labeled dir=tx|rx (per process, framing overhead included).
	MetricNetBytes = "distnet_bytes_total"
	// MetricNetRetries counts transport recovery actions, labeled
	// kind=dial|reconnect|retransmit.
	MetricNetRetries = "distnet_retries_total"
	// MetricNetRTT is a histogram of heartbeat round-trip times in
	// nanoseconds, one sample per acknowledged probe.
	MetricNetRTT = "distnet_rtt_ns"
	// MetricNetRankBytes counts TCP transport bytes per hosting process,
	// labeled dir=tx|rx and rank=<base rank> — the per-rank breakdown of
	// MetricNetBytes used by the -telemetry-summary network section.
	MetricNetRankBytes = "distnet_rank_bytes_total"
	// MetricNetTreeDepth is a gauge of this process's depth in the
	// tree-topology reduction tree (0 = root/coordinator; unset under hub).
	MetricNetTreeDepth = "distnet_tree_depth"
)

// RTTBucketsNS is the bucket layout for network round-trip times in
// nanoseconds, spanning 10 µs to 10 s logarithmically — the
// distnet_rtt_ns layout (heartbeats ride the same sockets as collective
// frames, so RTTs range from loopback microseconds to multi-second
// stalls under faults).
var RTTBucketsNS = []float64{
	1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5,
	1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7,
	1e8, 2.5e8, 5e8, 1e9, 2.5e9, 5e9, 1e10,
}

// DurationBucketsNS is the bucket layout for job-scale durations in
// nanoseconds, spanning 1 ms to 100 s logarithmically — the hylo-serve
// serve_job_duration_ns layout.
var DurationBucketsNS = []float64{
	1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7,
	1e8, 2.5e8, 5e8, 1e9, 2.5e9, 5e9,
	1e10, 2.5e10, 5e10, 1e11,
}
