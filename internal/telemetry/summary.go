package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// PhaseStat aggregates the complete spans sharing one name.
type PhaseStat struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (p PhaseStat) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// Summarize groups complete spans by name and returns the stats sorted by
// descending total time (ties by name, so output is deterministic).
func Summarize(events []SpanEvent) []PhaseStat {
	byName := map[string]*PhaseStat{}
	for _, e := range events {
		if e.Kind != KindComplete {
			continue
		}
		st := byName[e.Name]
		if st == nil {
			st = &PhaseStat{Name: e.Name}
			byName[e.Name] = st
		}
		st.Count++
		st.Total += e.Dur
		if e.Dur > st.Max {
			st.Max = e.Dur
		}
	}
	out := make([]PhaseStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteSummary prints the top-N phase table the CLIs show under
// -telemetry-summary. topN <= 0 prints everything.
func WriteSummary(w io.Writer, stats []PhaseStat, topN int) {
	if topN <= 0 || topN > len(stats) {
		topN = len(stats)
	}
	fmt.Fprintf(w, "%-24s %10s %12s %12s %12s\n", "phase", "count", "total", "mean", "max")
	for _, st := range stats[:topN] {
		fmt.Fprintf(w, "%-24s %10d %12.3fms %12.3fms %12.3fms\n",
			st.Name, st.Count,
			float64(st.Total.Nanoseconds())/1e6,
			float64(st.Mean().Nanoseconds())/1e6,
			float64(st.Max.Nanoseconds())/1e6)
	}
}
