package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// PhaseStat aggregates the complete spans sharing one name.
type PhaseStat struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (p PhaseStat) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// Summarize groups complete spans by name and returns the stats sorted by
// descending total time (ties by name, so output is deterministic).
func Summarize(events []SpanEvent) []PhaseStat {
	byName := map[string]*PhaseStat{}
	for _, e := range events {
		if e.Kind != KindComplete {
			continue
		}
		st := byName[e.Name]
		if st == nil {
			st = &PhaseStat{Name: e.Name}
			byName[e.Name] = st
		}
		st.Count++
		st.Total += e.Dur
		if e.Dur > st.Max {
			st.Max = e.Dur
		}
	}
	out := make([]PhaseStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteNetSummary prints the network section of -telemetry-summary from
// the given registry: heartbeat RTT quantiles, per-rank transport byte
// counters, and the tree depth gauge when a tree topology is active. It
// prints nothing when the registry holds no network metrics (in-process
// runs), so CLIs can call it unconditionally.
func WriteNetSummary(w io.Writer, r *Registry) {
	if r == nil {
		return
	}
	type rankBytes struct {
		rank   int
		tx, rx float64
	}
	var (
		ranks     []*rankBytes
		byRank    = map[int]*rankBytes{}
		treeDepth = -1.0
		rttSnap   *HistogramSnapshot
	)
	for _, p := range r.Snapshot() {
		switch p.Name {
		case MetricNetRTT:
			if p.Hist != nil && p.Hist.Count > 0 {
				rttSnap = p.Hist
			}
		case MetricNetTreeDepth:
			treeDepth = p.Value
		case MetricNetRankBytes:
			var dir string
			rank := -1
			for _, l := range p.Labels {
				switch l.Key {
				case "dir":
					dir = l.Value
				case "rank":
					if n, err := strconv.Atoi(l.Value); err == nil {
						rank = n
					}
				}
			}
			if rank < 0 {
				continue
			}
			rb := byRank[rank]
			if rb == nil {
				rb = &rankBytes{rank: rank}
				byRank[rank] = rb
				ranks = append(ranks, rb)
			}
			switch dir {
			case "tx":
				rb.tx += p.Value
			case "rx":
				rb.rx += p.Value
			}
		}
	}
	if rttSnap == nil && len(ranks) == 0 && treeDepth < 0 {
		return
	}

	fmt.Fprintln(w, "network:")
	if rttSnap != nil {
		fmt.Fprintf(w, "  heartbeat rtt: p50 %.3fms  p95 %.3fms  p99 %.3fms  (n=%d)\n",
			rttSnap.Quantile(0.50)/1e6, rttSnap.Quantile(0.95)/1e6, rttSnap.Quantile(0.99)/1e6, rttSnap.Count)
	}
	if treeDepth >= 0 {
		fmt.Fprintf(w, "  tree depth: %d (0 = root)\n", int(treeDepth))
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].rank < ranks[j].rank })
	for _, rb := range ranks {
		fmt.Fprintf(w, "  rank %d: tx %s  rx %s\n", rb.rank, fmtBytes(rb.tx), fmtBytes(rb.rx))
	}
}

// fmtBytes renders a byte count with a binary-prefix unit.
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// WriteSummary prints the top-N phase table the CLIs show under
// -telemetry-summary. topN <= 0 prints everything.
func WriteSummary(w io.Writer, stats []PhaseStat, topN int) {
	if topN <= 0 || topN > len(stats) {
		topN = len(stats)
	}
	fmt.Fprintf(w, "%-24s %10s %12s %12s %12s\n", "phase", "count", "total", "mean", "max")
	for _, st := range stats[:topN] {
		fmt.Fprintf(w, "%-24s %10d %12.3fms %12.3fms %12.3fms\n",
			st.Name, st.Count,
			float64(st.Total.Nanoseconds())/1e6,
			float64(st.Mean().Nanoseconds())/1e6,
			float64(st.Max.Nanoseconds())/1e6)
	}
}
