package telemetry

import (
	"encoding/json"
	"io"
)

// jsonlEvent is the compact per-line schema of the JSONL event log:
// nanosecond offsets, flat string attributes.
type jsonlEvent struct {
	Name  string            `json:"name"`
	Kind  string            `json:"kind"` // "span" | "instant"
	TID   int               `json:"tid"`
	TimeN int64             `json:"t_ns"`
	DurN  int64             `json:"dur_ns,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL renders events one JSON object per line — the cheap,
// grep/jq-friendly sibling of the Chrome trace exporter.
func WriteJSONL(w io.Writer, events []SpanEvent) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		je := jsonlEvent{
			Name:  e.Name,
			Kind:  "span",
			TID:   e.TID,
			TimeN: e.Time.Nanoseconds(),
			DurN:  e.Dur.Nanoseconds(),
		}
		if e.Kind == KindInstant {
			je.Kind = "instant"
		}
		if len(e.Labels) > 0 {
			je.Attrs = make(map[string]string, len(e.Labels))
			for _, l := range e.Labels {
				je.Attrs[l.Key] = l.Value
			}
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}
