// Package telemetry is the repo-wide observability layer: a Registry of
// counters, gauges, and fixed-bucket histograms; a Tracer recording
// begin/end spans and instant events with attributes; and exporters for
// the Chrome trace-event JSON format (chrome://tracing, Perfetto), the
// Prometheus text exposition format, and a compact JSONL event log.
//
// A process-global default instance exists but is DISABLED until
// SetEnabled(true); every instrumentation helper (Span, Instant,
// IncCounter, ...) first consults the Enabled() atomic, so instrumented
// hot paths cost one atomic load when telemetry is off. Tests and the
// dist.Timeline adapter construct private Registry/Tracer instances and
// use them directly — those always record.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Label is a key/value attribute attached to metrics and span events.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing integer metric (events, bytes).
// All methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add accrues n (n must be non-negative for Prometheus semantics;
// negative deltas are still applied but make the series non-monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can move in both directions (loss,
// accuracy, current damping). All methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accrues v with a CAS loop.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets with the given
// inclusive upper bounds (an implicit +Inf bucket catches the rest). It
// also tracks the exact sum and count, so Timeline-style totals are
// preserved precisely. All methods are safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-added
	count  atomic.Int64
}

// TimeBuckets is the default bucket layout for durations in seconds,
// spanning 10 µs to 10 s roughly logarithmically.
var TimeBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogram builds a histogram with the given sorted upper bounds;
// nil selects TimeBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = TimeBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns per-bucket counts; the last entry is the +Inf
// bucket. The snapshot is not atomic across buckets under concurrent
// writes, but each entry is individually consistent.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the containing bucket, the standard Prometheus histogram_quantile
// scheme. Observations in the +Inf bucket clamp to the highest finite
// bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank {
			if i == len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-cum)/c
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}
