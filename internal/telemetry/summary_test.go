package telemetry

import (
	"strings"
	"testing"
)

// TestWriteNetSummaryEmpty: a registry with no network metrics prints
// nothing, so CLIs can call WriteNetSummary unconditionally.
func TestWriteNetSummaryEmpty(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricTrainIterations).Add(3) // unrelated metric must not trigger the section
	var b strings.Builder
	WriteNetSummary(&b, r)
	if b.Len() != 0 {
		t.Fatalf("expected no output for a net-less registry, got:\n%s", b.String())
	}
	WriteNetSummary(&b, nil)
	if b.Len() != 0 {
		t.Fatalf("nil registry must print nothing, got:\n%s", b.String())
	}
}

// TestWriteNetSummaryContent: RTT quantiles, per-rank byte counters (tx
// and rx folded onto one line per rank, sorted numerically), and the tree
// depth gauge all land in the section.
func TestWriteNetSummaryContent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(MetricNetRTT, RTTBucketsNS)
	for i := 0; i < 100; i++ {
		h.Observe(2e5) // 0.2 ms
	}
	r.Counter(MetricNetRankBytes, Label{"dir", "tx"}, Label{"rank", "0"}).Add(2048)
	r.Counter(MetricNetRankBytes, Label{"dir", "rx"}, Label{"rank", "0"}).Add(4096)
	r.Counter(MetricNetRankBytes, Label{"dir", "tx"}, Label{"rank", "10"}).Add(1 << 21)
	r.Counter(MetricNetRankBytes, Label{"dir", "tx"}, Label{"rank", "2"}).Add(100)
	r.Gauge(MetricNetTreeDepth).Set(1)

	var b strings.Builder
	WriteNetSummary(&b, r)
	out := b.String()

	for _, want := range []string{
		"network:",
		"heartbeat rtt:",
		"(n=100)",
		"tree depth: 1",
		"rank 0: tx 2.00KiB  rx 4.00KiB",
		"rank 2: tx 100B  rx 0B",
		"rank 10: tx 2.00MiB  rx 0B",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// Numeric rank order: rank 2 before rank 10 despite lexicographic order.
	if strings.Index(out, "rank 2:") > strings.Index(out, "rank 10:") {
		t.Fatalf("ranks not sorted numerically:\n%s", out)
	}
	// All 100 samples sit in the (1e5, 2.5e5] bucket; interpolated
	// quantiles stay inside it.
	p50 := (&HistogramSnapshot{Bounds: h.Bounds(), Counts: h.BucketCounts(), Count: h.Count()}).Quantile(0.5)
	if p50 <= 1e5 || p50 > 2.5e5 {
		t.Fatalf("p50 %.0f outside the observed bucket (1e5, 2.5e5]", p50)
	}
}

// TestHistogramSnapshotQuantile pins the snapshot-side quantile against
// the live histogram's: identical state must give identical estimates.
func TestHistogramSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 3, 5, 9, 100} {
		h.Observe(v)
	}
	s := &HistogramSnapshot{Bounds: h.Bounds(), Counts: h.BucketCounts(), Sum: h.Sum(), Count: h.Count()}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := s.Quantile(q), h.Quantile(q); got != want {
			t.Fatalf("q=%.2f: snapshot %.4f != live %.4f", q, got, want)
		}
	}
	var empty *HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatalf("nil snapshot quantile must be 0")
	}
}
