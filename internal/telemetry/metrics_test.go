package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 32, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
			c.Add(3)
		}()
	}
	wg.Wait()
	want := int64(goroutines*perG + goroutines*3)
	if got := c.Value(); got != want {
		t.Fatalf("counter = %d; want %d", got, want)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g; want 1.5", got)
	}
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(0.5) // exactly representable → order-independent sum
			}
		}()
	}
	wg.Wait()
	want := 1.5 + float64(goroutines*perG)*0.5
	if got := g.Value(); got != want {
		t.Fatalf("gauge after concurrent adds = %g; want %g", got, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 100} {
		h.Observe(v)
	}
	// Inclusive upper bounds: 0.5,1 → le=1; 1.5,2 → le=2; 3 → le=4;
	// 5,100 → +Inf.
	want := []int64{2, 2, 1, 2}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d; want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d; want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d; want 7", h.Count())
	}
	if math.Abs(h.Sum()-113) > 1e-12 {
		t.Fatalf("sum = %g; want 113", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// 40 uniform samples, 10 per bucket.
	for b := 0; b < 4; b++ {
		for i := 0; i < 10; i++ {
			h.Observe(float64(b*10) + 5)
		}
	}
	cases := []struct{ q, want float64 }{
		{0.25, 10}, // rank 10 lands exactly at the first bound
		{0.5, 20},
		{0.75, 30},
		{1, 40},
		{0.125, 5}, // mid-first-bucket, linear interpolation
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("quantile(%g) = %g; want %g", c.q, got, c.want)
		}
	}
	// +Inf-bucket mass clamps to the top finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %g; want 1", got)
	}
	// Empty histogram.
	if got := NewHistogram(nil).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g; want 0", got)
	}
}

func TestHistogramConcurrentExactSum(t *testing.T) {
	h := NewHistogram(nil)
	const goroutines, perG = 32, 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), int64(goroutines*perG); got != want {
		t.Fatalf("count = %d; want %d", got, want)
	}
	if got, want := h.Sum(), float64(goroutines*perG)*0.25; got != want {
		t.Fatalf("sum = %g; want %g", got, want)
	}
}
