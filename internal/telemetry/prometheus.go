package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE header per metric name, counters and
// gauges as single samples, histograms as cumulative _bucket/_sum/_count
// series. Output order is the registry snapshot order (sorted by name,
// then labels), so it is stable across runs.
func WritePrometheus(w io.Writer, reg *Registry) error {
	snap := reg.Snapshot()
	lastTyped := ""
	for _, p := range snap {
		name := sanitizeMetricName(p.Name)
		if name != lastTyped {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, p.Kind); err != nil {
				return err
			}
			lastTyped = name
		}
		switch p.Kind {
		case KindCounter, KindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, labelString(p.Labels, "", ""), formatValue(p.Value)); err != nil {
				return err
			}
		case KindHistogram:
			h := p.Hist
			var cum int64
			for i, c := range h.Counts {
				cum += c
				le := "+Inf"
				if i < len(h.Bounds) {
					le = formatValue(h.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(p.Labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(p.Labels, "", ""), formatValue(h.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(p.Labels, "", ""), h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram le bound); empty label sets render as "".
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", sanitizeLabelName(l.Key), l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue prints floats the way Prometheus expects: integral values
// without an exponent, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func sanitizeMetricName(s string) string { return sanitize(s, true) }
func sanitizeLabelName(s string) string  { return sanitize(s, false) }

// sanitize maps arbitrary names onto the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons allowed only in metric names).
func sanitize(s string, allowColon bool) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9') || (allowColon && r == ':')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
