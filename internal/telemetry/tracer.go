package telemetry

import (
	"sync"
	"time"
)

// Event kinds, matching the Chrome trace-event "ph" field.
const (
	KindComplete = 'X' // a span with a start and a duration
	KindInstant  = 'i' // a point event
)

// SpanEvent is one recorded trace event. Time is the offset from the
// tracer's epoch (its construction time under the default clock), so
// traces are self-contained and start near zero.
type SpanEvent struct {
	Name string
	// Kind is KindComplete or KindInstant.
	Kind byte
	// TID is the lane the event renders in — worker rank throughout this
	// repo, so a distributed run shows one row per simulated GPU.
	TID  int
	Time time.Duration
	Dur  time.Duration
	// Labels become Chrome-trace args / JSONL attributes (layer index,
	// mode=KID/KIS, epoch, ...).
	Labels []Label
}

// Tracer records span and instant events into a bounded in-memory buffer.
// All methods are safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	events  []SpanEvent
	dropped int64
	max     int
	now     func() time.Duration
}

// DefaultMaxEvents bounds a tracer's buffer; further events are counted
// in Dropped() instead of growing memory without limit.
const DefaultMaxEvents = 1 << 20

// NewTracer returns a tracer whose clock is the monotonic time since
// construction.
func NewTracer() *Tracer {
	start := time.Now()
	return NewTracerAt(func() time.Duration { return time.Since(start) })
}

// NewTracerAt returns a tracer with an injected clock — tests pass a
// deterministic function so exported traces are byte-stable.
func NewTracerAt(now func() time.Duration) *Tracer {
	return &Tracer{max: DefaultMaxEvents, now: now}
}

// Now returns the tracer-clock reading, for callers that time a region
// themselves and report it via Record.
func (t *Tracer) Now() time.Duration { return t.now() }

// Span starts a span and returns the function that ends and records it.
//
//	defer tr.Span("inversion", rank, Label{"mode", "KID"})()
func (t *Tracer) Span(name string, tid int, labels ...Label) func() {
	start := t.now()
	return func() {
		t.record(SpanEvent{Name: name, Kind: KindComplete, TID: tid, Time: start, Dur: t.now() - start, Labels: labels})
	}
}

// Record adds a complete span with explicit start/duration (tracer-clock
// offsets).
func (t *Tracer) Record(name string, tid int, start, dur time.Duration, labels ...Label) {
	t.record(SpanEvent{Name: name, Kind: KindComplete, TID: tid, Time: start, Dur: dur, Labels: labels})
}

// Instant records a point event (worker failure, mode switch, ...).
func (t *Tracer) Instant(name string, tid int, labels ...Label) {
	t.record(SpanEvent{Name: name, Kind: KindInstant, TID: tid, Time: t.now(), Labels: labels})
}

func (t *Tracer) record(e SpanEvent) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Events returns a copy of the recorded events in record order.
func (t *Tracer) Events() []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanEvent(nil), t.events...)
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports events discarded after the buffer filled.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears the buffer and the dropped count.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.events = nil
	t.dropped = 0
	t.mu.Unlock()
}
