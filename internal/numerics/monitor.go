// Package numerics is the repo-wide numerical-health subsystem: a process
// Monitor that aggregates per-site condition estimates, damping retries,
// degradation-ladder fallbacks, and non-finite scrubs, plus the shared
// vocabulary (Rung) the panic-free solver plumbing uses to say how far a
// solve had to degrade.
//
// The solver layers (mat, core, kfac, sngd, kbfgs, train) record into the
// process-global Default() monitor; recording is cheap (one mutex-guarded
// map update per event — events only happen at second-order update sites,
// never per element). When telemetry is enabled, every event is mirrored
// onto telemetry counters/gauges so Prometheus and the JSONL exporters see
// the same signals; the end-of-run `-numerics-report` summary comes from
// Report().
package numerics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Rung identifies one level of the degradation ladder. Lower is healthier:
// RungPrimary means the requested solve succeeded as-is; each further rung
// is a strictly cheaper / safer approximation, ending at RungIdentity —
// the plain (scaled) SGD direction with no curvature correction at all.
type Rung int

// The ladder, healthiest first.
const (
	// RungPrimary: the requested factorization/solve succeeded unmodified.
	RungPrimary Rung = iota
	// RungRetry: succeeded after Levenberg-Marquardt damping escalation.
	RungRetry
	// RungExact: a sketched (randomized-ID) KID factorization was rejected
	// by its condition/residual guard and redone with the exact pivoted-QR
	// interpolative decomposition.
	RungExact
	// RungKIS: the KID inner system was abandoned for the KIS-style damped
	// kernel inverse on the same reduced rows.
	RungKIS
	// RungNystrom: fell back to the Nyström-Woodbury reduction.
	RungNystrom
	// RungDiagonal: fell back to a diagonal (Jacobi) inverse.
	RungDiagonal
	// RungIdentity: no usable curvature — the update degrades to the plain
	// gradient direction.
	RungIdentity
)

// String implements fmt.Stringer.
func (r Rung) String() string {
	switch r {
	case RungPrimary:
		return "primary"
	case RungRetry:
		return "damped-retry"
	case RungExact:
		return "exact-kid"
	case RungKIS:
		return "kis"
	case RungNystrom:
		return "nystrom"
	case RungDiagonal:
		return "diagonal"
	case RungIdentity:
		return "identity"
	}
	return fmt.Sprintf("rung(%d)", int(r))
}

// condLimit is the strictness knob: a successful factorization whose
// estimated 1-norm condition number exceeds the limit is treated as failed
// by the ladder callers, forcing a damped retry. Stored as float64 bits so
// concurrent workers can read it without a lock.
var condLimit atomic.Uint64

// DefaultCondLimit is the default strictness: solutions are accepted up to
// ~100 ulps of cancellation headroom short of total precision loss.
const DefaultCondLimit = 1e14

func init() { condLimit.Store(math.Float64bits(DefaultCondLimit)) }

// SetCondLimit sets the condition-number strictness limit; v <= 1 or
// non-finite values reset it to DefaultCondLimit.
func SetCondLimit(v float64) {
	if !(v > 1) || math.IsInf(v, 0) || math.IsNaN(v) {
		v = DefaultCondLimit
	}
	condLimit.Store(math.Float64bits(v))
}

// CondLimit returns the current condition-number strictness limit.
func CondLimit() float64 { return math.Float64frombits(condLimit.Load()) }

// condStat aggregates condition-number observations for one site.
type condStat struct {
	n    int64
	sum  float64
	max  float64
	over int64 // observations above the limit at observation time
}

// event is one degradation-ladder firing, kept in a bounded recent-events
// ring for the report.
type event struct {
	Site   string
	Rung   Rung
	Reason string
}

// maxEvents bounds the recent-degradation ring in the report.
const maxEvents = 32

// Monitor aggregates numerical-health events. All methods are safe for
// concurrent use (simulated workers run on separate goroutines).
type Monitor struct {
	mu        sync.Mutex
	conds     map[string]*condStat
	retries   map[string]int64
	fallbacks map[string]map[Rung]int64
	events    []event
	scrubs    atomic.Int64
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		conds:     map[string]*condStat{},
		retries:   map[string]int64{},
		fallbacks: map[string]map[Rung]int64{},
	}
}

var defaultMonitor = NewMonitor()

// Default returns the process-global monitor.
func Default() *Monitor { return defaultMonitor }

// ObserveCondition records a condition-number estimate for a solve site.
// Non-finite estimates count as over-limit observations.
func (m *Monitor) ObserveCondition(site string, cond float64) {
	m.mu.Lock()
	st := m.conds[site]
	if st == nil {
		st = &condStat{}
		m.conds[site] = st
	}
	st.n++
	if math.IsNaN(cond) || math.IsInf(cond, 0) || cond > CondLimit() {
		st.over++
	}
	if !math.IsNaN(cond) && !math.IsInf(cond, 0) {
		st.sum += cond
		if cond > st.max {
			st.max = cond
		}
	}
	m.mu.Unlock()
	if telemetry.Enabled() {
		telemetry.SetGauge(telemetry.MetricNumericsCond,
			cond, telemetry.Label{Key: "site", Value: site})
	}
}

// AddRetries records n damping-escalation retries at a solve site.
func (m *Monitor) AddRetries(site string, n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.retries[site] += int64(n)
	m.mu.Unlock()
	if telemetry.Enabled() {
		telemetry.IncCounter(telemetry.MetricNumericsRetries,
			int64(n), telemetry.Label{Key: "site", Value: site})
	}
}

// RecordFallback records that a degradation-ladder rung fired at a site,
// with a human-readable reason (typically the underlying solver error).
func (m *Monitor) RecordFallback(site string, rung Rung, reason string) {
	m.mu.Lock()
	byRung := m.fallbacks[site]
	if byRung == nil {
		byRung = map[Rung]int64{}
		m.fallbacks[site] = byRung
	}
	byRung[rung]++
	if len(m.events) < maxEvents {
		m.events = append(m.events, event{Site: site, Rung: rung, Reason: reason})
	}
	m.mu.Unlock()
	if telemetry.Enabled() {
		telemetry.IncCounter(telemetry.MetricNumericsFallbacks, 1,
			telemetry.Label{Key: "site", Value: site},
			telemetry.Label{Key: "rung", Value: rung.String()})
	}
}

// AddScrubs records n non-finite values scrubbed (zeroed) from a tensor.
func (m *Monitor) AddScrubs(n int) {
	if n <= 0 {
		return
	}
	m.scrubs.Add(int64(n))
	if telemetry.Enabled() {
		telemetry.IncCounter(telemetry.MetricNumericsScrubs, int64(n))
	}
}

// Reset clears all aggregates (tests and fresh runs).
func (m *Monitor) Reset() {
	m.mu.Lock()
	m.conds = map[string]*condStat{}
	m.retries = map[string]int64{}
	m.fallbacks = map[string]map[Rung]int64{}
	m.events = nil
	m.mu.Unlock()
	m.scrubs.Store(0)
}

// Snapshot is a point-in-time copy of the monitor's aggregates.
type Snapshot struct {
	// Retries maps site → total damping-escalation retries.
	Retries map[string]int64
	// Fallbacks maps site → rung → count of ladder firings.
	Fallbacks map[string]map[Rung]int64
	// Scrubs is the total count of non-finite values zeroed.
	Scrubs int64
}

// Snapshot returns a copy of the retry/fallback/scrub aggregates.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Retries:   make(map[string]int64, len(m.retries)),
		Fallbacks: make(map[string]map[Rung]int64, len(m.fallbacks)),
		Scrubs:    m.scrubs.Load(),
	}
	for k, v := range m.retries {
		s.Retries[k] = v
	}
	for site, byRung := range m.fallbacks {
		c := make(map[Rung]int64, len(byRung))
		for r, n := range byRung {
			c[r] = n
		}
		s.Fallbacks[site] = c
	}
	return s
}

// TotalRetries sums damping retries across all sites.
func (s Snapshot) TotalRetries() int64 {
	var n int64
	for _, v := range s.Retries {
		n += v
	}
	return n
}

// TotalFallbacks sums ladder firings across all sites and rungs.
func (s Snapshot) TotalFallbacks() int64 {
	var n int64
	for _, byRung := range s.Fallbacks {
		for _, v := range byRung {
			n += v
		}
	}
	return n
}

// RungCount sums firings of one rung across all sites.
func (s Snapshot) RungCount(r Rung) int64 {
	var n int64
	for _, byRung := range s.Fallbacks {
		n += byRung[r]
	}
	return n
}

// Report renders the end-of-run numerical-health summary. An entirely
// healthy run produces a single line saying so.
func (m *Monitor) Report() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	b.WriteString("numerical-health report\n")
	healthy := true

	if len(m.conds) > 0 {
		b.WriteString("  condition estimates (1-norm, Hager):\n")
		for _, site := range sortedKeys(m.conds) {
			st := m.conds[site]
			mean := 0.0
			if st.n > st.over {
				mean = st.sum / float64(st.n-st.over)
			}
			fmt.Fprintf(&b, "    %-24s n=%-6d mean=%-10.3g max=%-10.3g over-limit=%d\n",
				site, st.n, mean, st.max, st.over)
			if st.over > 0 {
				healthy = false
			}
		}
	}
	if len(m.retries) > 0 {
		healthy = false
		b.WriteString("  damping retries:\n")
		for _, site := range sortedKeys(m.retries) {
			fmt.Fprintf(&b, "    %-24s %d\n", site, m.retries[site])
		}
	}
	if len(m.fallbacks) > 0 {
		healthy = false
		b.WriteString("  degradation-ladder fallbacks:\n")
		for _, site := range sortedKeys(m.fallbacks) {
			byRung := m.fallbacks[site]
			rungs := make([]Rung, 0, len(byRung))
			for r := range byRung {
				rungs = append(rungs, r)
			}
			sort.Slice(rungs, func(i, j int) bool { return rungs[i] < rungs[j] })
			for _, r := range rungs {
				fmt.Fprintf(&b, "    %-24s %-12s %d\n", site, r.String(), byRung[r])
			}
		}
	}
	if n := m.scrubs.Load(); n > 0 {
		healthy = false
		fmt.Fprintf(&b, "  non-finite values scrubbed: %d\n", n)
	}
	if len(m.events) > 0 {
		b.WriteString("  recent degradations:\n")
		for _, e := range m.events {
			fmt.Fprintf(&b, "    %s → %s (%s)\n", e.Site, e.Rung, e.Reason)
		}
	}
	if healthy {
		b.WriteString("  all solves healthy: no retries, fallbacks, or scrubs recorded\n")
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package-level convenience wrappers over Default().

// ObserveCondition records a condition estimate on the default monitor.
func ObserveCondition(site string, cond float64) { defaultMonitor.ObserveCondition(site, cond) }

// AddRetries records damping retries on the default monitor.
func AddRetries(site string, n int) { defaultMonitor.AddRetries(site, n) }

// RecordFallback records a ladder firing on the default monitor.
func RecordFallback(site string, rung Rung, reason string) {
	defaultMonitor.RecordFallback(site, rung, reason)
}

// AddScrubs records non-finite scrubs on the default monitor.
func AddScrubs(n int) { defaultMonitor.AddScrubs(n) }

// Reset clears the default monitor.
func Reset() { defaultMonitor.Reset() }

// Report renders the default monitor's summary.
func Report() string { return defaultMonitor.Report() }
