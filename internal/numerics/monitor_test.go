package numerics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestMonitorAggregates(t *testing.T) {
	m := NewMonitor()
	m.ObserveCondition("site.a", 10)
	m.ObserveCondition("site.a", 1e20) // over the default limit
	m.ObserveCondition("site.b", math.Inf(1))
	m.AddRetries("site.a", 3)
	m.AddRetries("site.a", 0) // no-op
	m.RecordFallback("site.b", RungKIS, "inner system singular")
	m.RecordFallback("site.b", RungKIS, "again")
	m.RecordFallback("site.b", RungIdentity, "gave up")
	m.AddScrubs(5)
	m.AddScrubs(-1) // no-op

	s := m.Snapshot()
	if s.Retries["site.a"] != 3 {
		t.Fatalf("retries = %v", s.Retries)
	}
	if s.TotalRetries() != 3 {
		t.Fatalf("TotalRetries = %d", s.TotalRetries())
	}
	if s.Fallbacks["site.b"][RungKIS] != 2 || s.Fallbacks["site.b"][RungIdentity] != 1 {
		t.Fatalf("fallbacks = %v", s.Fallbacks)
	}
	if s.TotalFallbacks() != 3 {
		t.Fatalf("TotalFallbacks = %d", s.TotalFallbacks())
	}
	if s.RungCount(RungKIS) != 2 || s.RungCount(RungNystrom) != 0 {
		t.Fatalf("RungCount kis=%d nystrom=%d", s.RungCount(RungKIS), s.RungCount(RungNystrom))
	}
	if s.Scrubs != 5 {
		t.Fatalf("scrubs = %d", s.Scrubs)
	}

	rep := m.Report()
	for _, want := range []string{"site.a", "site.b", "damping retries",
		"degradation-ladder fallbacks", "kis", "identity",
		"non-finite values scrubbed: 5", "inner system singular"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "all solves healthy") {
		t.Fatal("unhealthy run reported as healthy")
	}

	m.Reset()
	s = m.Snapshot()
	if s.TotalRetries() != 0 || s.TotalFallbacks() != 0 || s.Scrubs != 0 {
		t.Fatalf("Reset left state: %+v", s)
	}
	if rep := m.Report(); !strings.Contains(rep, "all solves healthy") {
		t.Fatalf("clean monitor not reported healthy:\n%s", rep)
	}
}

func TestRungString(t *testing.T) {
	want := map[Rung]string{
		RungPrimary:  "primary",
		RungRetry:    "damped-retry",
		RungKIS:      "kis",
		RungNystrom:  "nystrom",
		RungDiagonal: "diagonal",
		RungIdentity: "identity",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("Rung(%d).String() = %q; want %q", int(r), r.String(), s)
		}
	}
	if got := Rung(99).String(); got != "rung(99)" {
		t.Fatalf("unknown rung = %q", got)
	}
	// The ladder ordering is part of the contract: healthier rungs compare
	// lower.
	if !(RungPrimary < RungRetry && RungRetry < RungKIS && RungKIS < RungNystrom &&
		RungNystrom < RungDiagonal && RungDiagonal < RungIdentity) {
		t.Fatal("ladder ordering broken")
	}
}

func TestCondLimit(t *testing.T) {
	defer SetCondLimit(DefaultCondLimit)
	if CondLimit() != DefaultCondLimit {
		t.Fatalf("default limit = %g", CondLimit())
	}
	SetCondLimit(1e6)
	if CondLimit() != 1e6 {
		t.Fatalf("limit = %g; want 1e6", CondLimit())
	}
	// Invalid limits reset to the default rather than poisoning the knob.
	for _, bad := range []float64{0, -3, 1, math.NaN(), math.Inf(1)} {
		SetCondLimit(bad)
		if CondLimit() != DefaultCondLimit {
			t.Fatalf("SetCondLimit(%v) left limit %g; want default", bad, CondLimit())
		}
	}
}

// Over-limit accounting must respect the limit at observation time.
func TestObserveConditionOverLimit(t *testing.T) {
	defer SetCondLimit(DefaultCondLimit)
	SetCondLimit(100)
	m := NewMonitor()
	m.ObserveCondition("s", 50)         // under
	m.ObserveCondition("s", 1e3)        // over
	m.ObserveCondition("s", math.NaN()) // counts as over
	rep := m.Report()
	if !strings.Contains(rep, "over-limit=2") {
		t.Fatalf("report missing over-limit accounting:\n%s", rep)
	}
}

func TestMonitorConcurrentUse(t *testing.T) {
	m := NewMonitor()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.ObserveCondition("par", float64(i))
				m.AddRetries("par", 1)
				m.RecordFallback("par", RungRetry, "r")
				m.AddScrubs(1)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Retries["par"] != 800 || s.Fallbacks["par"][RungRetry] != 800 || s.Scrubs != 800 {
		t.Fatalf("concurrent totals: %+v", s)
	}
}
