package cliutil

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/kbfgs"
	"repro/internal/kfac"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/sngd"
	"repro/internal/train"
)

// Models lists the workload model names accepted by BuildWorkload, in the
// order the CLIs document them.
func Models() []string {
	return []string{"3c1f", "mlp", "resnet", "densenet", "unet", "vit"}
}

// Optimizers lists the optimizer names accepted by PrecondFactory.
func Optimizers() []string {
	return []string{"sgd", "adam", "kfac", "kaisa", "ekfac", "kbfgs",
		"sngd", "hylo", "hylo-kid", "hylo-kis", "hylo-random"}
}

// Workload is a fully assembled training scenario: a network builder, the
// train/test split, the task (loss + metric), and the target metric at
// which time-to-target stops.
type Workload struct {
	Build  func(rng *mat.RNG) *nn.Network
	Train  *data.Dataset
	Test   *data.Dataset
	Task   train.Task
	Target float64
}

// BuildWorkload assembles the named synthetic workload. Every front end
// (CLI flags, server job specs) goes through here so a model name means
// the same dataset, architecture, and target everywhere.
func BuildWorkload(model string, classes, perClass int, seed uint64) (Workload, error) {
	switch model {
	case "mlp":
		ds := data.SynthVectors(mat.NewRNG(seed+100), classes, perClass*4, 32, 0.3)
		tr, te := data.Split(mat.NewRNG(seed+101), ds, 0.25)
		return Workload{
			Build: func(rng *mat.RNG) *nn.Network {
				return models.MLP(nn.Vec(32), []int{64, 32}, classes, rng)
			},
			Train: tr, Test: te, Task: train.Classification(), Target: 0.9,
		}, nil
	case "3c1f":
		shape := nn.Shape{C: 1, H: 16, W: 16}
		ds := data.SynthImages(mat.NewRNG(seed+100), data.ClassSpec{
			Classes: classes, PerClass: perClass, Shape: shape, Noise: 0.3})
		tr, te := data.Split(mat.NewRNG(seed+101), ds, 0.25)
		return Workload{
			Build: func(rng *mat.RNG) *nn.Network {
				return models.ThreeC1F(shape, 8, classes, rng)
			},
			Train: tr, Test: te, Task: train.Classification(), Target: 0.9,
		}, nil
	case "resnet":
		shape := nn.Shape{C: 3, H: 16, W: 16}
		ds := data.SynthImages(mat.NewRNG(seed+100), data.ClassSpec{
			Classes: classes, PerClass: perClass, Shape: shape, Noise: 0.3})
		tr, te := data.Split(mat.NewRNG(seed+101), ds, 0.25)
		return Workload{
			Build: func(rng *mat.RNG) *nn.Network {
				return models.ResNetCIFAR(shape, 2, 8, classes, rng)
			},
			Train: tr, Test: te, Task: train.Classification(), Target: 0.85,
		}, nil
	case "densenet":
		shape := nn.Shape{C: 3, H: 16, W: 16}
		ds := data.SynthImages(mat.NewRNG(seed+100), data.ClassSpec{
			Classes: classes, PerClass: perClass, Shape: shape, Noise: 0.3})
		tr, te := data.Split(mat.NewRNG(seed+101), ds, 0.25)
		return Workload{
			Build: func(rng *mat.RNG) *nn.Network {
				return models.DenseNetLite(shape, 6, classes, rng)
			},
			Train: tr, Test: te, Task: train.Classification(), Target: 0.75,
		}, nil
	case "vit":
		shape := nn.Shape{C: 1, H: 16, W: 16}
		ds := data.SynthImages(mat.NewRNG(seed+100), data.ClassSpec{
			Classes: classes, PerClass: perClass, Shape: shape, Noise: 0.3})
		tr, te := data.Split(mat.NewRNG(seed+101), ds, 0.25)
		return Workload{
			Build: func(rng *mat.RNG) *nn.Network {
				return models.TransformerLite(shape, 4, 12, 2, classes, rng)
			},
			Train: tr, Test: te, Task: train.Classification(), Target: 0.85,
		}, nil
	case "unet":
		shape := nn.Shape{C: 1, H: 16, W: 16}
		ds := data.SynthSegmentation(mat.NewRNG(seed+100), data.SegSpec{
			N: classes * perClass, Shape: shape, Noise: 0.4})
		tr, te := data.Split(mat.NewRNG(seed+101), ds, 0.25)
		return Workload{
			Build: func(rng *mat.RNG) *nn.Network {
				return models.MiniUNet(shape, 4, rng)
			},
			Train: tr, Test: te, Task: train.Segmentation(), Target: 0.8,
		}, nil
	default:
		return Workload{}, fmt.Errorf("unknown model %q (want one of %v)", model, Models())
	}
}

// PrecondOpts bundles the hyperparameters PrecondFactory threads into the
// second-order optimizer constructors — one struct shared by the CLIs and
// the job API so adding a knob is a one-field change rather than a
// signature ripple across three front ends.
type PrecondOpts struct {
	Damping  float64
	RankFrac float64
	// Eta is the gradient-switch threshold (the "hylo" policy only).
	Eta float64
	// IDTol is the KID numerical-rank tolerance; 0 disables truncation
	// (HyLo's struct uses 0 for "default", negative for "off").
	IDTol float64
	// KidSketch selects the randomized KID fast path (SketchOff, the
	// exact pivoted-QR ID, by default).
	KidSketch core.Sketch
	// KidOversample is the sketch width beyond the target rank; 0 selects
	// core.DefaultOversample.
	KidOversample int
}

// PrecondFactory maps an optimizer name onto a train.PrecondFactory. The
// first-order methods (sgd, adam) return a nil factory with a nil error —
// the trainer's convention for "no preconditioner".
func PrecondFactory(optimizer string, o PrecondOpts) (train.PrecondFactory, error) {
	hylo := func(policy core.SwitchPolicy) train.PrecondFactory {
		return func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
			h := core.NewHyLo(net, o.Damping, o.RankFrac, c, tl, rng)
			// Flag semantics: 0 disables truncation (the struct uses 0 for
			// "default", negative for "off").
			h.IDTol = o.IDTol
			if o.IDTol == 0 {
				h.IDTol = -1
			}
			h.Sketch = o.KidSketch
			h.Oversample = o.KidOversample
			if policy != nil {
				h.Policy = policy
			}
			return h
		}
	}
	switch optimizer {
	case "sgd", "adam":
		return nil, nil
	case "kfac", "kaisa":
		return func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
			return kfac.NewKFAC(net, o.Damping, c, tl)
		}, nil
	case "ekfac":
		return func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
			return kfac.NewEKFAC(net, o.Damping, c, tl)
		}, nil
	case "kbfgs":
		return func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
			return kbfgs.NewKBFGSL(net, 0.01, 10)
		}, nil
	case "sngd":
		return func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
			return sngd.New(net, o.Damping, c, tl)
		}, nil
	case "hylo":
		return hylo(core.GradientSwitch{Eta: o.Eta}), nil
	case "hylo-kid":
		return hylo(core.FixedSwitch{Mode: core.ModeKID}), nil
	case "hylo-kis":
		return hylo(core.FixedSwitch{Mode: core.ModeKIS}), nil
	case "hylo-random":
		return hylo(core.RandomSwitch{}), nil
	default:
		return nil, fmt.Errorf("unknown optimizer %q (want one of %v)", optimizer, Optimizers())
	}
}
