// Package cliutil holds the validation rules, spec grammars, and workload
// builders shared by every front end that launches training — the
// hylo-train and hylo-bench CLIs and the hylo-serve job API. Keeping one
// copy here is what guarantees a hyperparameter rejected on the command
// line is rejected identically by the server's job-spec validation (and
// vice versa), instead of the three front ends drifting apart.
//
// Everything returns errors; callers decide between os.Exit(2) (CLIs) and
// a 400 response (the server).
package cliutil

import (
	"fmt"
	"math"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
)

// Hyper bundles the cross-front-end training hyperparameters subject to
// shared validation.
type Hyper struct {
	Epochs    int
	Batch     int
	Workers   int
	Freq      int
	RankFrac  float64
	Damping   float64
	CondLimit float64
	IDTol     float64
	// KidSketch is the -kid-sketch mode string ("" means off).
	KidSketch string
	// KidOversample is the -kid-oversample sketch width; 0 means the
	// default (core.DefaultOversample).
	KidOversample int
}

// ValidateHyper rejects hyperparameter values that would otherwise fail in
// confusing ways downstream (zero-length epochs, empty shards, a rank
// fraction of zero rounding every kernel to nothing, a damping of zero
// making every update divide by zero). Flag names in messages use the CLI
// spelling; the server maps them onto JSON field names.
func ValidateHyper(h Hyper) error {
	if h.Epochs <= 0 {
		return fmt.Errorf("-epochs must be positive (got %d)", h.Epochs)
	}
	if h.Batch <= 0 {
		return fmt.Errorf("-batch must be positive (got %d)", h.Batch)
	}
	if h.Workers <= 0 {
		return fmt.Errorf("-workers must be positive (got %d)", h.Workers)
	}
	if h.Freq <= 0 {
		return fmt.Errorf("-freq must be positive (got %d)", h.Freq)
	}
	if h.RankFrac <= 0 || h.RankFrac > 1 {
		return fmt.Errorf("-rank-frac must be in (0, 1] (got %g)", h.RankFrac)
	}
	if h.Damping <= 0 || math.IsNaN(h.Damping) || math.IsInf(h.Damping, 0) {
		return fmt.Errorf("-damping must be positive and finite (got %g)", h.Damping)
	}
	if h.CondLimit <= 1 || math.IsNaN(h.CondLimit) {
		return fmt.Errorf("-cond-limit must be > 1 (got %g)", h.CondLimit)
	}
	if h.IDTol < 0 || h.IDTol >= 1 || math.IsNaN(h.IDTol) {
		return fmt.Errorf("-id-tol must be in [0, 1) (got %g)", h.IDTol)
	}
	if _, err := ParseKidSketch(h.KidSketch); err != nil {
		return err
	}
	if err := ValidateKidOversample(h.KidOversample); err != nil {
		return err
	}
	return nil
}

// MaxKidOversample caps the -kid-oversample sketch width: widths beyond
// this defeat the point of sketching (the sketch approaches the full
// kernel) and only waste memory.
const MaxKidOversample = 512

// BadOversampleError is the typed rejection of an out-of-range
// -kid-oversample (kid_oversample in the job API); the server maps it onto
// a 400 via serve/httperror like every other validation failure.
type BadOversampleError struct{ Got int }

// Error implements error with the CLI flag spelling.
func (e *BadOversampleError) Error() string {
	return fmt.Sprintf("-kid-oversample must be in [1, %d], or 0 for the default (got %d)", MaxKidOversample, e.Got)
}

// ValidateKidOversample rejects sketch widths outside [1, MaxKidOversample].
// 0 is accepted as "use the default" (core.DefaultOversample); negative
// values — which mat.RandomizedID historically accepted silently — are a
// typed BadOversampleError.
func ValidateKidOversample(n int) error {
	if n < 0 || n > MaxKidOversample {
		return &BadOversampleError{Got: n}
	}
	return nil
}

// KidSketchModes lists the -kid-sketch values in documentation order.
func KidSketchModes() []string { return []string{"off", "gauss", "srht"} }

// ParseKidSketch maps a -kid-sketch flag value onto core.Sketch. The empty
// string means off, so zero-valued specs stay valid.
func ParseKidSketch(mode string) (core.Sketch, error) {
	switch mode {
	case "", "off":
		return core.SketchOff, nil
	case "gauss":
		return core.SketchGauss, nil
	case "srht":
		return core.SketchSRHT, nil
	}
	return core.SketchOff, fmt.Errorf("-kid-sketch must be one of off|gauss|srht (got %q)", mode)
}

// Priority class ranks shared by the queue, the runner's preemption
// policy, and the job API. Higher ranks preempt lower ones.
const (
	PriorityLow    = 0
	PriorityNormal = 1
	PriorityHigh   = 2
)

// Priorities lists the job priority class names in ascending rank order.
func Priorities() []string { return []string{"low", "normal", "high"} }

// ParsePriority maps a priority class name onto its numeric rank. The
// empty string means normal, so zero-valued specs stay valid; anything
// else outside low|normal|high is rejected with the same message on the
// command line and in the job API.
func ParsePriority(s string) (int, error) {
	switch s {
	case "low":
		return PriorityLow, nil
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	}
	return 0, fmt.Errorf("priority must be one of low|normal|high (got %q)", s)
}

// PriorityName renders a rank back into its class name (unknown ranks
// clamp into range, so persisted records from any version render).
func PriorityName(rank int) string {
	names := Priorities()
	if rank < 0 {
		rank = 0
	}
	if rank >= len(names) {
		rank = len(names) - 1
	}
	return names[rank]
}

// ValidateRetention checks the hylo-serve artifact-retention knobs: each
// is "0 disables" plus a non-negativity rule, and the GC interval has a
// floor so a typo cannot spin the sweeper hot.
func ValidateRetention(retainDone int, maxBytes int64, maxAge, interval time.Duration) error {
	if retainDone < 0 {
		return fmt.Errorf("-retain-done must be >= 0 (got %d)", retainDone)
	}
	if maxBytes < 0 {
		return fmt.Errorf("-retain-max-bytes must be >= 0 (got %d)", maxBytes)
	}
	if maxAge < 0 {
		return fmt.Errorf("-retain-age must be >= 0 (got %v)", maxAge)
	}
	if interval < 0 {
		return fmt.Errorf("-gc-interval must be >= 0 (got %v)", interval)
	}
	if interval > 0 && interval < time.Second {
		return fmt.Errorf("-gc-interval %v is below the 1s floor", interval)
	}
	return nil
}

// ValidateSchedWorkers checks the layer-parallel scheduler worker count.
func ValidateSchedWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-sched-workers must be >= 1 (got %d)", n)
	}
	return nil
}

// ParseDecayEpochs parses a comma-separated LR decay-epoch list ("30,60")
// into a sorted slice. The empty string returns nil (no decay).
func ParseDecayEpochs(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var decays []int
	for _, s := range strings.Split(spec, ",") {
		e, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("-decay-at: %q is not an epoch number", s)
		}
		if e < 0 {
			return nil, fmt.Errorf("-decay-at: epoch %d is negative", e)
		}
		decays = append(decays, e)
	}
	sort.Ints(decays)
	return decays, nil
}

// ValidateListenAddr checks a TCP listen address ("host:port" with an
// optional host, ":0" for an ephemeral port). It is shared by hylo-train
// -listen and hylo-serve -addr, so both front ends reject the same strings.
func ValidateListenAddr(addr string) error {
	if addr == "" {
		return fmt.Errorf("listen address must not be empty")
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("listen address %q: want HOST:PORT or :PORT (%v)", addr, err)
	}
	if port == "" {
		return fmt.Errorf("listen address %q: missing port", addr)
	}
	p, err := strconv.Atoi(port)
	if err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("listen address %q: port must be 0-65535", addr)
	}
	if host != "" {
		if ip := net.ParseIP(host); ip == nil {
			// Not an IP literal; accept hostnames but reject the obviously
			// malformed (whitespace, empty labels).
			if strings.ContainsAny(host, " \t") {
				return fmt.Errorf("listen address %q: bad host", addr)
			}
		}
	}
	return nil
}

// ParsePeerList parses a comma-separated list of HOST:PORT peer addresses
// (the hylo-train -join target and the job API's net_peers field),
// rejecting empties and duplicates. An empty spec returns (nil, nil).
func ParsePeerList(spec string) ([]string, error) {
	if spec == "" {
		return nil, nil
	}
	seen := map[string]bool{}
	var peers []string
	for _, part := range strings.Split(spec, ",") {
		addr := strings.TrimSpace(part)
		if addr == "" {
			return nil, fmt.Errorf("peer list %q: empty address entry", spec)
		}
		if err := ValidateListenAddr(addr); err != nil {
			return nil, fmt.Errorf("peer %q: %v", addr, err)
		}
		if seen[addr] {
			return nil, fmt.Errorf("peer list %q: duplicate address %q", spec, addr)
		}
		seen[addr] = true
		peers = append(peers, addr)
	}
	return peers, nil
}

// MaxBarrierTimeout caps -barrier-timeout: anything longer than this is a
// configuration mistake (the watchdog would never fire in practice).
const MaxBarrierTimeout = time.Hour

// ValidateBarrierTimeout checks the -barrier-timeout watchdog duration.
// Zero disables the watchdog and is valid; negative or absurd values are
// rejected.
func ValidateBarrierTimeout(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("-barrier-timeout must be >= 0 (got %v)", d)
	}
	if d > 0 && d < 10*time.Millisecond {
		return fmt.Errorf("-barrier-timeout %v is below the 10ms floor (the watchdog would fire on healthy collectives)", d)
	}
	if d > MaxBarrierTimeout {
		return fmt.Errorf("-barrier-timeout must be <= %v (got %v)", MaxBarrierTimeout, d)
	}
	return nil
}

// ParseFaultSpec parses the -fault-inject chaos grammar: comma-separated
// directives of the form panic:RANK@STEP, bitflip:PROB, delay:PROB@DUR,
// degenerate:KIND@PROB. An empty spec returns (nil, nil) — chaos disabled.
func ParseFaultSpec(spec string) (*dist.FaultPlan, error) {
	if spec == "" {
		return nil, nil
	}
	plan := &dist.FaultPlan{PanicStep: -1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		kind, arg, ok := strings.Cut(part, ":")
		if !ok || arg == "" {
			return nil, fmt.Errorf("%q: want KIND:ARGS", part)
		}
		switch kind {
		case "panic":
			rs, ss, ok := strings.Cut(arg, "@")
			if !ok {
				return nil, fmt.Errorf("%q: want panic:RANK@STEP", part)
			}
			rank, err := strconv.Atoi(rs)
			if err != nil || rank < 0 {
				return nil, fmt.Errorf("%q: bad rank %q", part, rs)
			}
			step, err := strconv.Atoi(ss)
			if err != nil || step < 0 {
				return nil, fmt.Errorf("%q: bad step %q", part, ss)
			}
			plan.PanicRank, plan.PanicStep = rank, step
		case "bitflip":
			p, err := strconv.ParseFloat(arg, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("%q: probability must be in (0, 1]", part)
			}
			plan.BitFlipProb = p
		case "delay":
			ps, ds, ok := strings.Cut(arg, "@")
			if !ok {
				return nil, fmt.Errorf("%q: want delay:PROB@DUR", part)
			}
			p, err := strconv.ParseFloat(ps, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("%q: probability must be in (0, 1]", part)
			}
			d, err := time.ParseDuration(ds)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("%q: bad duration %q", part, ds)
			}
			plan.StragglerProb, plan.StragglerDelay = p, d
		case "degenerate":
			ks, ps, ok := strings.Cut(arg, "@")
			if !ok {
				return nil, fmt.Errorf("%q: want degenerate:KIND@PROB", part)
			}
			switch ks {
			case "dup", "zero", "huge":
			default:
				return nil, fmt.Errorf("%q: kind must be dup, zero, or huge", part)
			}
			p, err := strconv.ParseFloat(ps, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("%q: probability must be in (0, 1]", part)
			}
			plan.DegenerateKind, plan.DegenerateProb = ks, p
		default:
			return nil, fmt.Errorf("%q: unknown fault kind %q", part, kind)
		}
	}
	return plan, nil
}
