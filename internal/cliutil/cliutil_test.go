package cliutil

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mat"
)

func TestValidateHyper(t *testing.T) {
	good := Hyper{Epochs: 10, Batch: 32, Workers: 4, Freq: 5,
		RankFrac: 0.1, Damping: 0.03, CondLimit: 1e14, IDTol: 1e-12}
	if err := ValidateHyper(good); err != nil {
		t.Fatalf("valid hypers rejected: %v", err)
	}
	// rank-frac = 1 is the inclusive upper edge; id-tol 0 disables truncation.
	edge := Hyper{Epochs: 1, Batch: 1, Workers: 1, Freq: 1,
		RankFrac: 1, Damping: 1, CondLimit: 2, IDTol: 0}
	if err := ValidateHyper(edge); err != nil {
		t.Fatalf("edge hypers rejected: %v", err)
	}
	bad := func(mut func(*Hyper)) Hyper {
		h := good
		mut(&h)
		return h
	}
	cases := []struct {
		name string
		h    Hyper
	}{
		{"zero epochs", bad(func(h *Hyper) { h.Epochs = 0 })},
		{"negative epochs", bad(func(h *Hyper) { h.Epochs = -3 })},
		{"zero batch", bad(func(h *Hyper) { h.Batch = 0 })},
		{"zero workers", bad(func(h *Hyper) { h.Workers = 0 })},
		{"negative freq", bad(func(h *Hyper) { h.Freq = -1 })},
		{"zero rank-frac", bad(func(h *Hyper) { h.RankFrac = 0 })},
		{"rank-frac above one", bad(func(h *Hyper) { h.RankFrac = 1.5 })},
		{"negative rank-frac", bad(func(h *Hyper) { h.RankFrac = -0.1 })},
		{"zero damping", bad(func(h *Hyper) { h.Damping = 0 })},
		{"negative damping", bad(func(h *Hyper) { h.Damping = -0.01 })},
		{"NaN damping", bad(func(h *Hyper) { h.Damping = math.NaN() })},
		{"Inf damping", bad(func(h *Hyper) { h.Damping = math.Inf(1) })},
		{"cond-limit at one", bad(func(h *Hyper) { h.CondLimit = 1 })},
		{"negative cond-limit", bad(func(h *Hyper) { h.CondLimit = -5 })},
		{"NaN cond-limit", bad(func(h *Hyper) { h.CondLimit = math.NaN() })},
		{"negative id-tol", bad(func(h *Hyper) { h.IDTol = -1e-6 })},
		{"id-tol at one", bad(func(h *Hyper) { h.IDTol = 1 })},
		{"NaN id-tol", bad(func(h *Hyper) { h.IDTol = math.NaN() })},
		{"unknown kid-sketch", bad(func(h *Hyper) { h.KidSketch = "hadamard" })},
		{"negative kid-oversample", bad(func(h *Hyper) { h.KidOversample = -4 })},
		{"huge kid-oversample", bad(func(h *Hyper) { h.KidOversample = MaxKidOversample + 1 })},
	}
	for _, c := range cases {
		if err := ValidateHyper(c.h); err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestParseKidSketch(t *testing.T) {
	for mode, want := range map[string]core.Sketch{
		"": core.SketchOff, "off": core.SketchOff,
		"gauss": core.SketchGauss, "srht": core.SketchSRHT,
	} {
		got, err := ParseKidSketch(mode)
		if err != nil || got != want {
			t.Errorf("ParseKidSketch(%q) = (%v, %v); want (%v, nil)", mode, got, err, want)
		}
	}
	if _, err := ParseKidSketch("gaussian"); err == nil {
		t.Fatal("unknown sketch mode accepted")
	}
	// The flag vocabulary and the core enum round-trip.
	for _, mode := range KidSketchModes() {
		s, err := ParseKidSketch(mode)
		if err != nil {
			t.Fatalf("documented mode %q rejected: %v", mode, err)
		}
		if s.String() != mode {
			t.Errorf("mode %q round-trips to %q", mode, s.String())
		}
	}
}

func TestValidateKidOversample(t *testing.T) {
	for _, n := range []int{0, 1, 8, MaxKidOversample} {
		if err := ValidateKidOversample(n); err != nil {
			t.Errorf("oversample %d rejected: %v", n, err)
		}
	}
	for _, n := range []int{-1, -100, MaxKidOversample + 1} {
		err := ValidateKidOversample(n)
		if err == nil {
			t.Errorf("oversample %d accepted", n)
			continue
		}
		var bo *BadOversampleError
		if !errors.As(err, &bo) || bo.Got != n {
			t.Errorf("oversample %d: error %v is not a BadOversampleError carrying the value", n, err)
		}
	}
}

func TestValidateSchedWorkers(t *testing.T) {
	if err := ValidateSchedWorkers(1); err != nil {
		t.Fatalf("1 worker rejected: %v", err)
	}
	if err := ValidateSchedWorkers(16); err != nil {
		t.Fatalf("16 workers rejected: %v", err)
	}
	for _, n := range []int{0, -1} {
		if err := ValidateSchedWorkers(n); err == nil {
			t.Errorf("%d workers: expected error", n)
		}
	}
}

func TestParseDecayEpochs(t *testing.T) {
	if d, err := ParseDecayEpochs(""); d != nil || err != nil {
		t.Fatalf("empty spec = (%v, %v); want (nil, nil)", d, err)
	}
	d, err := ParseDecayEpochs("60, 30")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || d[0] != 30 || d[1] != 60 {
		t.Fatalf("decays = %v; want sorted [30 60]", d)
	}
	for _, bad := range []string{"x", "3,-1", "3,,5"} {
		if _, err := ParseDecayEpochs(bad); err == nil {
			t.Errorf("spec %q: expected error", bad)
		}
	}
}

func TestBuildWorkloadAllModels(t *testing.T) {
	for _, model := range Models() {
		w, err := BuildWorkload(model, 3, 8, 1)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if w.Build == nil || w.Train == nil || w.Test == nil || w.Task.Loss == nil {
			t.Fatalf("%s: incomplete workload", model)
		}
		if w.Target <= 0 || w.Target > 1 {
			t.Fatalf("%s: target %g out of range", model, w.Target)
		}
		// The builder must produce a net compatible with the data.
		net := w.Build(mat.NewRNG(1))
		x, _ := w.Train.Batch([]int{0})
		out := net.Forward(x, false)
		if out.Rows() != 1 {
			t.Fatalf("%s: forward produced %d rows", model, out.Rows())
		}
	}
	if _, err := BuildWorkload("nope", 3, 8, 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestPrecondFactoryAllOptimizers(t *testing.T) {
	firstOrder := map[string]bool{"sgd": true, "adam": true}
	for _, o := range Optimizers() {
		f, err := PrecondFactory(o, PrecondOpts{Damping: 0.1, RankFrac: 0.1, Eta: 0.25, IDTol: 1e-12})
		if err != nil {
			t.Fatalf("%s: %v", o, err)
		}
		if firstOrder[o] {
			if f != nil {
				t.Fatalf("%s: expected nil factory", o)
			}
			continue
		}
		if f == nil {
			t.Fatalf("%s: nil factory", o)
		}
		w, err := BuildWorkload("mlp", 3, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		net := w.Build(mat.NewRNG(2))
		pre := f(net, dist.Local(), nil, mat.NewRNG(3))
		if pre == nil || pre.Name() == "" {
			t.Fatalf("%s: factory produced invalid preconditioner", o)
		}
	}
	if _, err := PrecondFactory("nope", PrecondOpts{Damping: 0.1, RankFrac: 0.1, Eta: 0.25}); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
}

func TestParseFaultSpec(t *testing.T) {
	if plan, err := ParseFaultSpec(""); plan != nil || err != nil {
		t.Fatalf("empty spec = (%v, %v); want (nil, nil)", plan, err)
	}

	plan, err := ParseFaultSpec("panic:1@40,bitflip:0.01,delay:0.1@5ms")
	if err != nil {
		t.Fatal(err)
	}
	if plan.PanicRank != 1 || plan.PanicStep != 40 {
		t.Fatalf("panic = rank %d step %d; want 1@40", plan.PanicRank, plan.PanicStep)
	}
	if plan.BitFlipProb != 0.01 {
		t.Fatalf("bitflip prob = %v; want 0.01", plan.BitFlipProb)
	}
	if plan.StragglerProb != 0.1 || plan.StragglerDelay != 5*time.Millisecond {
		t.Fatalf("delay = %v@%v; want 0.1@5ms", plan.StragglerProb, plan.StragglerDelay)
	}
	if !plan.Enabled() {
		t.Fatal("parsed plan reports disabled")
	}

	// Degenerate payload injection parses kind and probability.
	plan, err = ParseFaultSpec("degenerate:dup@1")
	if err != nil {
		t.Fatal(err)
	}
	if plan.DegenerateKind != "dup" || plan.DegenerateProb != 1 {
		t.Fatalf("degenerate = %s@%v; want dup@1", plan.DegenerateKind, plan.DegenerateProb)
	}
	if !plan.Enabled() {
		t.Fatal("degenerate-only plan reports disabled")
	}

	// A spec without panic must leave panic injection off.
	plan, err = ParseFaultSpec("bitflip:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if plan.PanicStep >= 0 {
		t.Fatalf("panic step = %d; want negative (disabled)", plan.PanicStep)
	}

	bad := []string{
		"panic:1",                // missing @STEP
		"panic:x@4",              // bad rank
		"panic:1@-2",             // negative step
		"bitflip:0",              // prob out of range
		"bitflip:1.5",            // prob out of range
		"delay:0.1",              // missing duration
		"delay:0.1@bogus",        // bad duration
		"delay:2@5ms",            // prob out of range
		"gremlins:1",             // unknown kind
		"panic",                  // no args
		"panic:1@40,oops:",       // trailing bad directive
		"degenerate:dup",         // missing @PROB
		"degenerate:dup@0",       // prob out of range
		"degenerate:dup@1.5",     // prob out of range
		"degenerate:gremlin@0.5", // unknown kind
	}
	for _, spec := range bad {
		if _, err := ParseFaultSpec(spec); err == nil {
			t.Errorf("spec %q: expected error, got nil", spec)
		}
	}
}

// TestValidateListenAddr: the shared hylo-train -listen / hylo-serve -addr
// rule set.
func TestValidateListenAddr(t *testing.T) {
	good := []string{
		":0", ":7077", "127.0.0.1:9000", "0.0.0.0:80",
		"localhost:7077", "node-3.cluster:65535", "[::1]:7077",
	}
	for _, addr := range good {
		if err := ValidateListenAddr(addr); err != nil {
			t.Errorf("addr %q: unexpected error %v", addr, err)
		}
	}
	bad := []string{
		"",           // empty
		"7077",       // no colon
		"host:",      // missing port
		"host:port",  // non-numeric port
		"host:70777", // port out of range
		"host:-1",    // negative port
		"a b:7077",   // whitespace host
		"::1:7077",   // unbracketed IPv6
		"host:1:2",   // too many colons
	}
	for _, addr := range bad {
		if err := ValidateListenAddr(addr); err == nil {
			t.Errorf("addr %q: expected error, got nil", addr)
		}
	}
}

// TestParsePeerList: the -join / net_peers grammar.
func TestParsePeerList(t *testing.T) {
	peers, err := ParsePeerList("")
	if err != nil || peers != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", peers, err)
	}
	peers, err = ParsePeerList("10.0.0.1:7077, 10.0.0.2:7077 ,localhost:9000")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"10.0.0.1:7077", "10.0.0.2:7077", "localhost:9000"}
	if len(peers) != len(want) {
		t.Fatalf("got %v, want %v", peers, want)
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("peer %d: got %q, want %q", i, peers[i], want[i])
		}
	}
	bad := []string{
		",",                           // empty entry
		"10.0.0.1:7077,",              // trailing empty
		"10.0.0.1:7077,10.0.0.1:7077", // duplicate
		"10.0.0.1",                    // no port
		"10.0.0.1:7077,host:",         // bad second entry
	}
	for _, spec := range bad {
		if _, err := ParsePeerList(spec); err == nil {
			t.Errorf("spec %q: expected error, got nil", spec)
		}
	}
}

// TestValidateBarrierTimeout: zero disables, sane range enforced.
func TestValidateBarrierTimeout(t *testing.T) {
	for _, d := range []time.Duration{0, 10 * time.Millisecond, 30 * time.Second, time.Hour} {
		if err := ValidateBarrierTimeout(d); err != nil {
			t.Errorf("timeout %v: unexpected error %v", d, err)
		}
	}
	for _, d := range []time.Duration{-time.Second, time.Millisecond, time.Hour + time.Second} {
		if err := ValidateBarrierTimeout(d); err == nil {
			t.Errorf("timeout %v: expected error, got nil", d)
		}
	}
}
