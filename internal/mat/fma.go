package mat

import (
	"math"
	"os"
	"sync/atomic"
	"time"
)

// fmaKernels selects the math.FMA-based kernels. On hardware without fused
// multiply-add the stdlib falls back to a very slow software path, and even
// with the instruction present some microarchitectures (and VMs) sustain
// fewer fused ops per cycle than separate mul+add streams. Neither the
// build tags nor cpu-feature flags settle that, so the choice is made by
// timing the two real micro-kernels once at package init.
//
// The choice changes numerics: fused multiply-add rounds once where
// mul+add rounds twice, so the two kernel families produce results that
// differ in the last ulp. A single process is internally consistent either
// way, but processes that must agree bit-for-bit (the multi-process
// transport's ranks) cannot each trust their own timing race — the
// coordinator's choice is authoritative and is propagated to every member
// through the generation-start handshake via SetFMAKernels. The HYLO_FMA
// environment variable (0/1) overrides the calibration for deterministic
// runs.
var fmaKernels atomic.Bool

func init() { fmaKernels.Store(initialFMA()) }

func initialFMA() bool {
	switch os.Getenv("HYLO_FMA") {
	case "0":
		return false
	case "1":
		return true
	}
	return fmaIsFast()
}

// fmaEnabled reports whether the fused-multiply-add kernel family is
// active. An atomic load so the transport may conform the profile while
// compute goroutines are running; the cost is noise next to any kernel's
// inner loop.
func fmaEnabled() bool { return fmaKernels.Load() }

// FMAKernels reports the active kernel family: true when the fused
// multiply-add variants are in use. Part of the process's numerics
// profile — distributed ranks must agree on it for bit-identical results.
func FMAKernels() bool { return fmaEnabled() }

// SetFMAKernels selects the kernel family, overriding the init-time
// calibration. The multi-process transport calls this when a generation
// starts so every rank computes with the coordinator's kernels; results
// of concurrent in-flight kernels are unspecified, so callers should
// conform the profile at a compute quiescent point (rendezvous).
func SetFMAKernels(on bool) { fmaKernels.Store(on) }

// fmaIsFast races microKernel2x4FMA against microKernel2x4 on packed panels
// of a realistic depth. Timing the actual kernels (independent accumulator
// lanes + streaming loads) rather than a serial reduction matters: a
// dependency chain hides throughput differences, and throughput is what the
// GEMM inner loop runs at. mul+add is the safe default; FMA must win by a
// clear margin (>10%) to be selected.
func fmaIsFast() bool {
	const k, reps, trials = 512, 64, 3
	ap := make([]float64, gemmMR*k)
	bp := make([]float64, gemmNR*k)
	for i := range ap {
		ap[i] = 1.0 + float64(i%7)*0.01
	}
	for i := range bp {
		bp[i] = 1.0 - float64(i%5)*0.01
	}
	out := NewDense(gemmMR, gemmNR)
	run := func(kern func(*Dense, []float64, []float64, int, int, int, int, int)) time.Duration {
		best := time.Duration(math.MaxInt64)
		for t := 0; t < trials; t++ {
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				kern(out, ap, bp, k, 0, 0, gemmMR, gemmNR)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	run(microKernel2x4FMA) // warm up (first math.FMA call may fault in the fallback path)
	tFMA := run(microKernel2x4FMA)
	tMul := run(microKernel2x4)
	// Keep the result observable so the kernel calls cannot be folded away.
	if math.IsNaN(out.data[0]) {
		return false
	}
	return tFMA*10 < tMul*9
}

// dotFMA is Dot with fused multiply-adds (same 4-lane association order).
func dotFMA(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 = math.FMA(x[i], y[i], s0)
		s1 = math.FMA(x[i+1], y[i+1], s1)
		s2 = math.FMA(x[i+2], y[i+2], s2)
		s3 = math.FMA(x[i+3], y[i+3], s3)
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s = math.FMA(x[i], y[i], s)
	}
	return s
}

// axpyFMA is axpy with fused multiply-adds.
func axpyFMA(dst, src []float64, s float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = math.FMA(s, src[i], dst[i])
		dst[i+1] = math.FMA(s, src[i+1], dst[i+1])
		dst[i+2] = math.FMA(s, src[i+2], dst[i+2])
		dst[i+3] = math.FMA(s, src[i+3], dst[i+3])
	}
	for ; i < n; i++ {
		dst[i] = math.FMA(s, src[i], dst[i])
	}
}
