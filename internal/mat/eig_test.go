package mat

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func symmetrize(a *Dense) *Dense {
	s := a.Clone().AddMat(a.T())
	return s.Scale(0.5)
}

func TestSymEigDiagonal(t *testing.T) {
	a := FromRows([][]float64{
		{3, 0, 0},
		{0, 1, 0},
		{0, 0, 2},
	})
	vals, vecs := SymEig(a)
	want := []float64{1, 2, 3}
	for i, v := range vals {
		if math.Abs(v-want[i]) > 1e-12 {
			t.Fatalf("vals = %v; want %v", vals, want)
		}
	}
	// Eigenvectors must be signed unit basis vectors.
	for j := 0; j < 3; j++ {
		col := vecs.Col(j)
		if math.Abs(Norm2(col)-1) > 1e-12 {
			t.Fatalf("eigenvector %d not unit: %v", j, col)
		}
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _ := SymEig(a)
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v; want [1 3]", vals)
	}
}

func TestSymEigReconstruction(t *testing.T) {
	rng := NewRNG(21)
	for _, n := range []int{1, 2, 3, 10, 40} {
		a := symmetrize(RandN(rng, n, n, 1))
		vals, vecs := SymEig(a)
		// Rebuild V diag(vals) Vᵀ.
		vd := vecs.Clone()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				vd.Set(i, j, vd.At(i, j)*vals[j])
			}
		}
		rec := MulTB(vd, vecs)
		if d := MaxAbsDiff(rec, a); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: reconstruction error %g", n, d)
		}
		// Orthonormality.
		if d := MaxAbsDiff(MulTA(vecs, vecs), Identity(n)); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: VᵀV differs from I by %g", n, d)
		}
	}
}

func TestSymEigValuesMatchesSymEig(t *testing.T) {
	rng := NewRNG(22)
	for _, n := range []int{2, 7, 25} {
		a := symmetrize(RandN(rng, n, n, 1))
		v1, _ := SymEig(a)
		v2 := SymEigValues(a)
		for i := range v1 {
			if math.Abs(v1[i]-v2[i]) > 1e-8 {
				t.Fatalf("n=%d: value %d differs: %g vs %g", n, i, v1[i], v2[i])
			}
		}
	}
}

func TestSymEigTraceInvariant(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*91 + 1)
		n := 1 + rng.Intn(15)
		a := symmetrize(RandN(rng, n, n, 1))
		vals := SymEigValues(a)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-a.Trace()) < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigPSDNonNegative(t *testing.T) {
	rng := NewRNG(23)
	b := RandN(rng, 20, 6, 1)
	k := Gram(b) // PSD with rank ≤ 6
	vals := SymEigValues(k)
	for _, v := range vals {
		if v < -1e-8 {
			t.Fatalf("PSD matrix has negative eigenvalue %g", v)
		}
	}
	// Rank should be ≤ 6: at most 6 eigenvalues significantly > 0.
	big := 0
	for _, v := range vals {
		if v > 1e-8 {
			big++
		}
	}
	if big > 6 {
		t.Fatalf("rank-6 Gram matrix has %d large eigenvalues", big)
	}
}

func TestNumericalRankLowRank(t *testing.T) {
	rng := NewRNG(24)
	// Kernel built from an (almost) rank-5 factor: rank@90% must be small.
	u := RandLowRank(rng, 64, 32, 5, 0)
	k := Gram(u)
	r := NumericalRank(k, 0.9)
	if r > 5 || r < 1 {
		t.Fatalf("NumericalRank = %d; want in [1,5]", r)
	}
}

func TestNumericalRankFullRankIdentity(t *testing.T) {
	// Identity: every eigenvalue equal, rank@90% of n=10 is 9.
	if r := NumericalRank(Identity(10), 0.9); r != 9 {
		t.Fatalf("NumericalRank(I₁₀, .9) = %d; want 9", r)
	}
}

func TestNumericalRankZeroMatrix(t *testing.T) {
	if r := NumericalRank(NewDense(5, 5), 0.9); r != 0 {
		t.Fatalf("NumericalRank(0) = %d; want 0", r)
	}
}

func TestSymEigClusteredEigenvalues(t *testing.T) {
	// Matrix with repeated eigenvalues must still give orthonormal vectors.
	rng := NewRNG(25)
	n := 12
	q, _ := SymEig(symmetrize(RandN(rng, n, n, 1))) // random orthogonal basis
	_ = q
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(1 + i/4) // triples of equal eigenvalues
	}
	// Build A = V diag(vals) Vᵀ from a random orthogonal V.
	_, v := SymEig(symmetrize(RandN(rng, n, n, 1)))
	vd := v.Clone()
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			vd.Set(i, j, vd.At(i, j)*vals[j])
		}
	}
	a := MulTB(vd, v)
	got := SymEigValues(a)
	sort.Float64s(vals)
	for i := range got {
		if math.Abs(got[i]-vals[i]) > 1e-8 {
			t.Fatalf("clustered eigenvalues: got %v want %v", got, vals)
		}
	}
}

func BenchmarkSymEig128(b *testing.B) {
	rng := NewRNG(1)
	a := RandSPD(rng, 128, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SymEigValues(a)
	}
}
