package mat

import (
	"math"
	"testing"
)

func TestPowerIterateDominantEigenvalue(t *testing.T) {
	rng := NewRNG(71)
	// Known spectrum: diag(10, 3, 1) rotated by a random orthogonal basis.
	_, v := SymEig(Gram(RandN(rng, 3, 4, 1)))
	d := NewDense(3, 3)
	d.Set(0, 0, 1)
	d.Set(1, 1, 3)
	d.Set(2, 2, 10)
	a := Mul(v, Mul(d, v.T()))
	lambda, iters := PowerIterate(a, 500, 1e-12, rng)
	if math.Abs(lambda-10) > 1e-6 {
		t.Fatalf("PowerIterate = %g after %d iters; want 10", lambda, iters)
	}
}

func TestPowerIterateEmpty(t *testing.T) {
	rng := NewRNG(72)
	if l, _ := PowerIterate(NewDense(0, 0), 10, 1e-9, rng); l != 0 {
		t.Fatalf("empty matrix eigenvalue = %g", l)
	}
}

func TestPowerIterateMatchesSymEig(t *testing.T) {
	rng := NewRNG(73)
	a := RandSPD(rng, 20, 0.5)
	vals := SymEigValues(a)
	want := vals[len(vals)-1]
	got, _ := PowerIterate(a, 2000, 1e-12, rng)
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("power iteration %g vs eigensolver %g", got, want)
	}
}
