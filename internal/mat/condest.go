package mat

import "math"

// Norm1 returns the 1-norm of the matrix (maximum absolute column sum).
func (m *Dense) Norm1() float64 {
	var best float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.At(i, j))
		}
		if s > best {
			best = s
		}
	}
	return best
}

// hagerInvNorm1 estimates ‖A⁻¹‖₁ with Hager's algorithm (the scheme behind
// LAPACK's dlacon / Higham's condest): a handful of solves with A and Aᵀ
// against probing vectors, converging on the maximizing column of A⁻¹.
// solve and solveT overwrite their argument with A⁻¹x and A⁻ᵀx.
func hagerInvNorm1(n int, solve, solveT func(x []float64)) float64 {
	if n == 0 {
		return 0
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	var est float64
	for iter := 0; iter < 5; iter++ {
		solve(x) // x ← A⁻¹ x
		var e float64
		for _, v := range x {
			e += math.Abs(v)
		}
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return math.Inf(1)
		}
		if iter > 0 && e <= est {
			break
		}
		est = e
		// ξ = sign(A⁻¹x); z = A⁻ᵀ ξ.
		for i := range x {
			if x[i] >= 0 {
				x[i] = 1
			} else {
				x[i] = -1
			}
		}
		solveT(x)
		// Converged when ‖z‖∞ no longer beats the current probe.
		j, zmax := 0, 0.0
		for i, v := range x {
			if a := math.Abs(v); a > zmax {
				j, zmax = i, a
			}
		}
		if zmax <= est {
			break
		}
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
	}
	return est
}

// Cond1 returns the Hager-style 1-norm condition estimate κ₁ ≈ ‖A‖₁‖A⁻¹‖₁
// from the factorization, given ‖A‖₁ of the factored matrix (use Norm1()
// before factoring, since the factorization clones the input). The cost is
// a few O(n²) solves — negligible next to the O(n³) factorization.
func (f *LU) Cond1(anorm float64) float64 {
	n := f.lu.rows
	if n == 0 {
		return 0
	}
	inv := hagerInvNorm1(n,
		func(x []float64) { f.solveVec(x) },
		func(x []float64) { f.solveVecT(x) })
	return anorm * inv
}

// solveVec solves a*x = b in place for a single vector.
func (f *LU) solveVec(x []float64) {
	n := f.lu.rows
	tmp := GetFloats(n)
	for i, p := range f.piv {
		tmp[i] = x[p]
	}
	// Forward: L*y = P*b (unit lower).
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		var s float64
		for k := 0; k < i; k++ {
			s += ri[k] * tmp[k]
		}
		tmp[i] -= s
	}
	// Backward: U*x = y.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		var s float64
		for k := i + 1; k < n; k++ {
			s += ri[k] * tmp[k]
		}
		tmp[i] = (tmp[i] - s) / ri[i]
	}
	copy(x, tmp)
	PutFloats(tmp)
}

// solveVecT solves aᵀ*x = b in place for a single vector: with P*a = L*U,
// aᵀ = Uᵀ Lᵀ P, so solve Uᵀy = b (forward), Lᵀw = y (backward, unit
// diagonal), then undo the permutation x = Pᵀw.
func (f *LU) solveVecT(x []float64) {
	n := f.lu.rows
	tmp := GetFloats(n)
	copy(tmp, x)
	// Forward: Uᵀ y = b (Uᵀ is lower-triangular with U's diagonal).
	for i := 0; i < n; i++ {
		var s float64
		for k := 0; k < i; k++ {
			s += f.lu.At(k, i) * tmp[k]
		}
		tmp[i] = (tmp[i] - s) / f.lu.At(i, i)
	}
	// Backward: Lᵀ w = y (Lᵀ is unit upper-triangular).
	for i := n - 2; i >= 0; i-- {
		var s float64
		for k := i + 1; k < n; k++ {
			s += f.lu.At(k, i) * tmp[k]
		}
		tmp[i] -= s
	}
	for i, p := range f.piv {
		x[p] = tmp[i]
	}
	PutFloats(tmp)
}

// CondEstCholesky returns the 1-norm condition estimate of the SPD matrix
// whose Cholesky factor is l, given the matrix's 1-norm. A = L·Lᵀ is
// symmetric, so the transpose solve of Hager's iteration reuses the same
// forward/backward substitution.
func CondEstCholesky(l *Dense, anorm float64) float64 {
	n := l.rows
	if n == 0 {
		return 0
	}
	solve := func(x []float64) { cholSolveVec(l, x) }
	return anorm * hagerInvNorm1(n, solve, solve)
}

// cholSolveVec solves (L·Lᵀ)x = b in place for a single vector.
func cholSolveVec(l *Dense, x []float64) {
	n := l.rows
	for i := 0; i < n; i++ {
		ri := l.Row(i)
		var s float64
		for k := 0; k < i; k++ {
			s += ri[k] * x[k]
		}
		x[i] = (x[i] - s) / ri[i]
	}
	for i := n - 1; i >= 0; i-- {
		var s float64
		for k := i + 1; k < n; k++ {
			s += l.At(k, i) * x[k]
		}
		x[i] = (x[i] - s) / l.At(i, i)
	}
}

// ScrubNonFinite zeroes every NaN/±Inf entry of data and returns how many
// entries were scrubbed. The numerical-health layers use it to keep one
// poisoned coordinate from spreading through a whole update.
func ScrubNonFinite(data []float64) int {
	n := 0
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			data[i] = 0
			n++
		}
	}
	return n
}

// ScrubNonFinite zeroes non-finite entries of the matrix in place,
// returning the scrub count.
func (m *Dense) ScrubNonFinite() int { return ScrubNonFinite(m.data) }

// AllFinite reports whether every entry of data is finite.
func AllFinite(data []float64) bool {
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// IsFinite reports whether every entry of the matrix is finite.
func (m *Dense) IsFinite() bool { return AllFinite(m.data) }
