package mat

import (
	"math"
	"testing"
)

func TestNorm1(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, -2, 3, 4})
	// Column sums: |1|+|3| = 4, |-2|+|4| = 6.
	if got := m.Norm1(); got != 6 {
		t.Fatalf("Norm1 = %v; want 6", got)
	}
	if got := NewDense(0, 0).Norm1(); got != 0 {
		t.Fatalf("Norm1 of empty = %v; want 0", got)
	}
}

// The Hager estimate is exact for diagonal matrices: κ₁(diag(1, 1e-8)) = 1e8.
func TestLUCond1KnownDiagonal(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1e-4)
	a.Set(2, 2, 1e-8)
	anorm := a.Norm1()
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	cond := f.Cond1(anorm)
	if cond < 1e7 || cond > 1e9 {
		t.Fatalf("Cond1 = %g; want within a factor of 10 of 1e8", cond)
	}
}

// On a random well-conditioned SPD matrix the estimate must land within a
// small factor of the true κ₁ computed from the explicit inverse.
func TestCondEstCholeskyMatchesExplicitInverse(t *testing.T) {
	rng := NewRNG(11)
	a := RandSPD(rng, 8, 0.5)
	anorm := a.Norm1()
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	est := CondEstCholesky(l, anorm)
	inv, err := InvSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	truth := anorm * inv.Norm1()
	// Hager's estimate is a lower bound that is almost always within a
	// small factor; 10× headroom keeps this test robust.
	if est > truth*1.01 || est < truth/10 {
		t.Fatalf("CondEstCholesky = %g; true κ₁ = %g", est, truth)
	}
	if est < 1 {
		t.Fatalf("condition estimate %g below 1", est)
	}
}

func TestInvCondInto(t *testing.T) {
	rng := NewRNG(5)
	a := RandSPD(rng, 6, 1)
	dst := NewDense(6, 6)
	cond, err := InvCondInto(dst, a)
	if err != nil {
		t.Fatal(err)
	}
	if cond < 1 || math.IsInf(cond, 0) {
		t.Fatalf("cond = %g; want finite ≥ 1", cond)
	}
	if d := MaxAbsDiff(Mul(a, dst), Identity(6)); d > 1e-8 {
		t.Fatalf("A·A⁻¹ off identity by %g", d)
	}

	// A singular input must produce a typed error and an infinite estimate,
	// never a panic.
	sing := NewDense(3, 3)
	sing.Fill(1) // rank 1
	cond, err = InvCondInto(NewDense(3, 3), sing)
	if err == nil {
		t.Fatal("singular input: expected error")
	}
	if !math.IsInf(cond, 1) {
		t.Fatalf("singular input: cond = %g; want +Inf", cond)
	}
}

func TestScrubNonFinite(t *testing.T) {
	v := []float64{1, math.NaN(), math.Inf(1), math.Inf(-1), -2}
	if AllFinite(v) {
		t.Fatal("AllFinite on poisoned slice")
	}
	if n := ScrubNonFinite(v); n != 3 {
		t.Fatalf("scrubbed %d; want 3", n)
	}
	if !AllFinite(v) || v[1] != 0 || v[2] != 0 || v[3] != 0 || v[0] != 1 || v[4] != -2 {
		t.Fatalf("scrub result %v", v)
	}
	m := NewDenseData(1, 2, []float64{math.NaN(), 7})
	if n := m.ScrubNonFinite(); n != 1 || !m.IsFinite() {
		t.Fatalf("matrix scrub: n=%d finite=%v", n, m.IsFinite())
	}
}

// A singular SPD system at zero damping must be rescued by the bounded
// Levenberg-Marquardt escalation: retries > 0 and a finite inverse.
func TestInvSPDDampedCheckedEscalatesSingular(t *testing.T) {
	sing := NewDense(4, 4)
	sing.Fill(1) // rank-1 Gram matrix: Cholesky fails at damp=0
	inv, usedDamp, retries, cond, err := InvSPDDampedChecked(sing, 0)
	if err != nil {
		t.Fatalf("damped escalation failed: %v", err)
	}
	if retries == 0 {
		t.Fatal("singular input inverted with zero retries")
	}
	if usedDamp <= 0 {
		t.Fatalf("usedDamp = %g; want > 0", usedDamp)
	}
	if !inv.IsFinite() {
		t.Fatal("non-finite inverse")
	}
	if math.IsNaN(cond) {
		t.Fatal("NaN condition estimate")
	}
}

// Non-finite input cannot be rescued by damping: the checked form must
// return an error (bounded — it must terminate), and the never-panic
// wrapper must degrade to a finite diagonal pseudo-inverse.
func TestInvSPDDampedNonFiniteInput(t *testing.T) {
	bad := NewDense(3, 3)
	bad.Fill(math.NaN())
	if _, _, _, _, err := InvSPDDampedChecked(bad, 0.1); err == nil {
		t.Fatal("NaN input: expected error from checked form")
	}
	inv := InvSPDDamped(bad, 0.1)
	if inv == nil || !inv.IsFinite() {
		t.Fatalf("never-panic wrapper returned unusable inverse: %v", inv)
	}
}

func TestQRPivotNumericalRankDuplicatedRows(t *testing.T) {
	rng := NewRNG(21)
	base := RandN(rng, 1, 5, 1)
	a := VStack(base, base, base, base) // four identical rows: rank 1
	f := FactorQRPivot(a)
	if r := f.NumericalRank(1e-10); r != 1 {
		t.Fatalf("NumericalRank(dup rows) = %d; want 1", r)
	}
	// tol <= 0 disables truncation: full factorization size.
	if r := f.NumericalRank(0); r != 4 {
		t.Fatalf("NumericalRank(tol=0) = %d; want 4", r)
	}
	// A full-rank matrix keeps its full rank under a tight tolerance.
	b := RandN(rng, 5, 5, 1)
	if r := FactorQRPivot(b).NumericalRank(1e-12); r != 5 {
		t.Fatalf("NumericalRank(full rank) = %d; want 5", r)
	}
	// All-zero and non-finite inputs report rank 0, never panic.
	if r := FactorQRPivot(NewDense(3, 3)).NumericalRank(1e-10); r != 0 {
		t.Fatalf("NumericalRank(zero) = %d; want 0", r)
	}
	nan := NewDense(3, 3)
	nan.Fill(math.NaN())
	if r := FactorQRPivot(nan).NumericalRank(1e-10); r != 0 {
		t.Fatalf("NumericalRank(NaN) = %d; want 0", r)
	}
}

func TestInterpolativeDecompTolTruncates(t *testing.T) {
	rng := NewRNG(33)
	row := RandN(rng, 1, 6, 1)
	a := VStack(row, row, row, row, row) // rank 1
	p, s := InterpolativeDecompTol(a, 4, 1e-10)
	if len(s) != 1 {
		t.Fatalf("rank-1 input truncated to %d skeleton rows; want 1", len(s))
	}
	if p.Cols() != 1 || p.Rows() != 5 {
		t.Fatalf("projection dims %dx%d; want 5x1", p.Rows(), p.Cols())
	}
	// Reconstruction from the single skeleton row is exact up to roundoff.
	if d := MaxAbsDiff(Mul(p, a.SelectRows(s)), a); d > 1e-9 {
		t.Fatalf("rank-1 reconstruction error %g", d)
	}
	// tol = 0 keeps the requested rank.
	_, s0 := InterpolativeDecompTol(a, 4, 0)
	if len(s0) != 4 {
		t.Fatalf("tol=0 truncated to %d; want full 4", len(s0))
	}
}

// Norm2 must saturate to +Inf (not NaN) when an entry overflows.
func TestNorm2OverflowSafe(t *testing.T) {
	// Scaled accumulation: the naive sum of squares overflows, the scaled
	// form does not.
	if got := Norm2([]float64{1e200, 1e200}); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 scaled accumulation = %v; want finite", got)
	}
	// An infinite entry saturates to +Inf rather than NaN.
	if got := Norm2([]float64{1, math.Inf(1)}); !math.IsInf(got, 1) {
		t.Fatalf("Norm2 with Inf entry = %v; want +Inf", got)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2(3,4) = %v; want 5", got)
	}
	if got := Norm2([]float64{1e-300, 1e-300}); got == 0 {
		t.Fatal("Norm2 underflowed to 0 on tiny inputs")
	}
}
