package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandomizedIDExactLowRank(t *testing.T) {
	rng := NewRNG(61)
	q := RandLowRank(rng, 30, 30, 4, 0)
	p, s := RandomizedID(rng, q, 4, 6)
	if len(s) != 4 || p.Cols() != 4 {
		t.Fatalf("dims: |S|=%d, P cols=%d; want 4", len(s), p.Cols())
	}
	rel := Sub(Mul(p, q.SelectRows(s)), q).FrobNorm() / q.FrobNorm()
	if rel > 1e-8 {
		t.Fatalf("rank-4 randomized ID of rank-4 matrix: rel error %g", rel)
	}
}

func TestRandomizedIDSelectedRowsIdentity(t *testing.T) {
	rng := NewRNG(62)
	q := RandN(rng, 15, 15, 1)
	r := 6
	p, s := RandomizedID(rng, q, r, 4)
	for k, row := range s {
		for j := 0; j < r; j++ {
			want := 0.0
			if j == k {
				want = 1
			}
			if d := p.At(row, j) - want; d > 1e-12 || d < -1e-12 {
				t.Fatalf("P[%d,%d] = %g; want %g", row, j, p.At(row, j), want)
			}
		}
	}
}

func TestRandomizedIDCloseToDeterministic(t *testing.T) {
	// On a low-rank+noise matrix, the randomized ID error should be within
	// a small factor of the deterministic pivoted-QR ID error.
	rng := NewRNG(63)
	q := RandLowRank(rng, 40, 40, 6, 1e-3)
	pd, sd := InterpolativeDecomp(q, 8)
	detErr := Sub(Mul(pd, q.SelectRows(sd)), q).FrobNorm()
	pr, sr := RandomizedID(rng, q, 8, 8)
	randErr := Sub(Mul(pr, q.SelectRows(sr)), q).FrobNorm()
	if randErr > 10*detErr+1e-9 {
		t.Fatalf("randomized ID error %g far above deterministic %g", randErr, detErr)
	}
}

func TestRandomizedIDZeroAndClamp(t *testing.T) {
	rng := NewRNG(64)
	q := RandN(rng, 5, 3, 1)
	p, s := RandomizedID(rng, q, 100, 2) // clamped to 3
	if len(s) != 3 || p.Cols() != 3 {
		t.Fatalf("clamp: |S|=%d; want 3", len(s))
	}
	p0, s0 := RandomizedID(rng, NewDense(4, 4), 0, 2)
	if len(s0) != 0 || p0.Cols() != 0 {
		t.Fatal("zero-rank randomized ID should be empty")
	}
}

// Property: indices valid and unique; reconstruction finite.
func TestRandomizedIDProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*119 + 3)
		m := 5 + rng.Intn(20)
		r := 1 + rng.Intn(m-1)
		q := RandLowRank(rng, m, m, min(r, 5), 0.01)
		p, s := RandomizedID(rng, q, r, 5)
		if len(s) != r || p.Cols() != r {
			return false
		}
		seen := map[int]bool{}
		for _, i := range s {
			if i < 0 || i >= m || seen[i] {
				return false
			}
			seen[i] = true
		}
		return Mul(p, q.SelectRows(s)).FrobNorm() < 1e12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeterministicID512r64(b *testing.B) {
	rng := NewRNG(1)
	q := RandLowRank(rng, 512, 512, 64, 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InterpolativeDecomp(q, 64)
	}
}

func BenchmarkRandomizedID512r64(b *testing.B) {
	rng := NewRNG(1)
	q := RandLowRank(rng, 512, 512, 64, 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomizedID(rng, q, 64, 10)
	}
}

func TestRandomizedIDIntoSRHTLowRank(t *testing.T) {
	rng := NewRNG(71)
	q := RandLowRank(rng, 30, 30, 4, 0)
	p, s, cond := RandomizedIDInto(nil, nil, rng, q, 4, 6, SketchSRHT)
	if len(s) != 4 || p.Cols() != 4 {
		t.Fatalf("dims: |S|=%d, P cols=%d; want 4", len(s), p.Cols())
	}
	if cond < 1 || math.IsInf(cond, 0) || math.IsNaN(cond) {
		t.Fatalf("cond = %g; want finite >= 1 on a well-posed sketch", cond)
	}
	rel := Sub(Mul(p, q.SelectRows(s)), q).FrobNorm() / q.FrobNorm()
	if rel > 1e-8 {
		t.Fatalf("rank-4 SRHT ID of rank-4 matrix: rel error %g", rel)
	}
}

func TestRandomizedIDIntoKinds(t *testing.T) {
	for _, kind := range []SketchKind{SketchGauss, SketchSRHT} {
		rng := NewRNG(72)
		q := RandN(rng, 17, 13, 1)
		r := 6
		p, s, cond := RandomizedIDInto(nil, nil, rng, q, r, 4, kind)
		if len(s) != r || p.Rows() != 17 || p.Cols() != r {
			t.Fatalf("kind %d: dims |S|=%d P=%dx%d", kind, len(s), p.Rows(), p.Cols())
		}
		seen := map[int]bool{}
		for k, row := range s {
			if row < 0 || row >= 17 || seen[row] {
				t.Fatalf("kind %d: bad index set %v", kind, s)
			}
			seen[row] = true
			for j := 0; j < r; j++ {
				want := 0.0
				if j == k {
					want = 1
				}
				if d := p.At(row, j) - want; d > 1e-12 || d < -1e-12 {
					t.Fatalf("kind %d: P[%d,%d] = %g; want %g", kind, row, j, p.At(row, j), want)
				}
			}
		}
		if math.IsNaN(cond) || cond < 1 {
			t.Fatalf("kind %d: cond = %g; want >= 1", kind, cond)
		}
	}
}

// S1 regression: negative or zero oversample used to slip through and index
// past the sketch; it must clamp to 1 and still produce a valid ID.
func TestRandomizedIDNegativeOversampleClamped(t *testing.T) {
	for _, kind := range []SketchKind{SketchGauss, SketchSRHT} {
		for _, over := range []int{-7, 0} {
			rng := NewRNG(73)
			q := RandLowRank(rng, 20, 20, 5, 1e-3)
			p, s, _ := RandomizedIDInto(nil, nil, rng, q, 5, over, kind)
			if len(s) != 5 || p.Cols() != 5 {
				t.Fatalf("kind %d over %d: |S|=%d cols=%d; want 5", kind, over, len(s), p.Cols())
			}
			if !p.IsFinite() {
				t.Fatalf("kind %d over %d: non-finite P", kind, over)
			}
		}
	}
}

// The sketch width k must clamp to n when r+oversample exceeds it.
func TestRandomizedIDOversampleClampedToN(t *testing.T) {
	for _, kind := range []SketchKind{SketchGauss, SketchSRHT} {
		rng := NewRNG(74)
		q := RandN(rng, 20, 3, 1)
		p, s, _ := RandomizedIDInto(nil, nil, rng, q, 2, 100, kind)
		if len(s) != 2 || p.Cols() != 2 || !p.IsFinite() {
			t.Fatalf("kind %d: |S|=%d cols=%d finite=%v; want 2/2/true",
				kind, len(s), p.Cols(), p.IsFinite())
		}
	}
}

// A numerically rank-deficient input must surface through the condition
// estimate rather than silently yielding a garbage basis.
func TestRandomizedIDIntoCondFlagsDegenerate(t *testing.T) {
	for _, kind := range []SketchKind{SketchGauss, SketchSRHT} {
		rng := NewRNG(75)
		v := RandN(rng, 25, 1, 1)
		q := Mul(v, v.T()) // exactly rank 1
		_, _, cond := RandomizedIDInto(nil, nil, rng, q, 5, 4, kind)
		if !(cond > 1e10) && !math.IsInf(cond, 1) {
			t.Fatalf("kind %d: cond = %g on a rank-1 input; want huge or +Inf", kind, cond)
		}
	}
}

func TestRandomizedIDIntoZeroRank(t *testing.T) {
	rng := NewRNG(76)
	q := RandN(rng, 6, 6, 1)
	p, s, cond := RandomizedIDInto(nil, nil, rng, q, 0, 4, SketchSRHT)
	if p.Rows() != 6 || p.Cols() != 0 || len(s) != 0 || cond != 1 {
		t.Fatalf("zero rank: P=%dx%d |S|=%d cond=%g", p.Rows(), p.Cols(), len(s), cond)
	}
}

// FWHT applied twice is n times the identity — the orthogonality property
// the SRHT scaling relies on.
func TestFWHTInvolution(t *testing.T) {
	rng := NewRNG(77)
	x := make([]float64, 16)
	orig := make([]float64, 16)
	for i := range x {
		x[i] = rng.Norm()
		orig[i] = x[i]
	}
	fwht(x)
	fwht(x)
	for i := range x {
		if d := x[i]/16 - orig[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("fwht involution: elem %d drifted by %g", i, d)
		}
	}
}

// Steady-state calls with recycled workspaces must not allocate beyond the
// small fixed factorization header.
func TestRandomizedIDIntoSteadyStateAllocs(t *testing.T) {
	rng := NewRNG(78)
	q := RandLowRank(rng, 64, 64, 8, 1e-3)
	for _, kind := range []SketchKind{SketchGauss, SketchSRHT} {
		kind := kind
		var p *Dense
		var s []int
		p, s, _ = RandomizedIDInto(p, s, rng, q, 8, 6, kind) // warm pools
		allocs := testing.AllocsPerRun(10, func() {
			p, s, _ = RandomizedIDInto(p, s, rng, q, 8, 6, kind)
		})
		if allocs > 4 {
			t.Fatalf("kind %d: %v allocs/op in steady state; want <= 4", kind, allocs)
		}
	}
}

func BenchmarkSRHTID512r64(b *testing.B) {
	rng := NewRNG(1)
	q := RandLowRank(rng, 512, 512, 64, 1e-3)
	var p *Dense
	var s []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, s, _ = RandomizedIDInto(p, s, rng, q, 64, 10, SketchSRHT)
	}
}
