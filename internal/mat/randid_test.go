package mat

import (
	"testing"
	"testing/quick"
)

func TestRandomizedIDExactLowRank(t *testing.T) {
	rng := NewRNG(61)
	q := RandLowRank(rng, 30, 30, 4, 0)
	p, s := RandomizedID(rng, q, 4, 6)
	if len(s) != 4 || p.Cols() != 4 {
		t.Fatalf("dims: |S|=%d, P cols=%d; want 4", len(s), p.Cols())
	}
	rel := Sub(Mul(p, q.SelectRows(s)), q).FrobNorm() / q.FrobNorm()
	if rel > 1e-8 {
		t.Fatalf("rank-4 randomized ID of rank-4 matrix: rel error %g", rel)
	}
}

func TestRandomizedIDSelectedRowsIdentity(t *testing.T) {
	rng := NewRNG(62)
	q := RandN(rng, 15, 15, 1)
	r := 6
	p, s := RandomizedID(rng, q, r, 4)
	for k, row := range s {
		for j := 0; j < r; j++ {
			want := 0.0
			if j == k {
				want = 1
			}
			if d := p.At(row, j) - want; d > 1e-12 || d < -1e-12 {
				t.Fatalf("P[%d,%d] = %g; want %g", row, j, p.At(row, j), want)
			}
		}
	}
}

func TestRandomizedIDCloseToDeterministic(t *testing.T) {
	// On a low-rank+noise matrix, the randomized ID error should be within
	// a small factor of the deterministic pivoted-QR ID error.
	rng := NewRNG(63)
	q := RandLowRank(rng, 40, 40, 6, 1e-3)
	pd, sd := InterpolativeDecomp(q, 8)
	detErr := Sub(Mul(pd, q.SelectRows(sd)), q).FrobNorm()
	pr, sr := RandomizedID(rng, q, 8, 8)
	randErr := Sub(Mul(pr, q.SelectRows(sr)), q).FrobNorm()
	if randErr > 10*detErr+1e-9 {
		t.Fatalf("randomized ID error %g far above deterministic %g", randErr, detErr)
	}
}

func TestRandomizedIDZeroAndClamp(t *testing.T) {
	rng := NewRNG(64)
	q := RandN(rng, 5, 3, 1)
	p, s := RandomizedID(rng, q, 100, 2) // clamped to 3
	if len(s) != 3 || p.Cols() != 3 {
		t.Fatalf("clamp: |S|=%d; want 3", len(s))
	}
	p0, s0 := RandomizedID(rng, NewDense(4, 4), 0, 2)
	if len(s0) != 0 || p0.Cols() != 0 {
		t.Fatal("zero-rank randomized ID should be empty")
	}
}

// Property: indices valid and unique; reconstruction finite.
func TestRandomizedIDProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*119 + 3)
		m := 5 + rng.Intn(20)
		r := 1 + rng.Intn(m-1)
		q := RandLowRank(rng, m, m, min(r, 5), 0.01)
		p, s := RandomizedID(rng, q, r, 5)
		if len(s) != r || p.Cols() != r {
			return false
		}
		seen := map[int]bool{}
		for _, i := range s {
			if i < 0 || i >= m || seen[i] {
				return false
			}
			seen[i] = true
		}
		return Mul(p, q.SelectRows(s)).FrobNorm() < 1e12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeterministicID512r64(b *testing.B) {
	rng := NewRNG(1)
	q := RandLowRank(rng, 512, 512, 64, 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InterpolativeDecomp(q, 64)
	}
}

func BenchmarkRandomizedID512r64(b *testing.B) {
	rng := NewRNG(1)
	q := RandLowRank(rng, 512, 512, 64, 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomizedID(rng, q, 64, 10)
	}
}
