package mat

import (
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which GEMM runs
// single-threaded; spawning goroutines for tiny products costs more than it
// saves.
const parallelThreshold = 64 * 64 * 64

// gemmBlock is the row-panel size each worker goroutine claims at a time.
const gemmBlock = 32

// Mul returns a*b using a cache-blocked, goroutine-parallel kernel.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic("mat: Mul dimension mismatch")
	}
	out := NewDense(a.rows, b.cols)
	gemm(out, a, b, false, false)
	return out
}

// MulTA returns aᵀ*b.
func MulTA(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic("mat: MulTA dimension mismatch")
	}
	out := NewDense(a.cols, b.cols)
	gemm(out, a, b, true, false)
	return out
}

// MulTB returns a*bᵀ.
func MulTB(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic("mat: MulTB dimension mismatch")
	}
	out := NewDense(a.rows, b.rows)
	gemm(out, a, b, false, true)
	return out
}

// gemm computes out = op(a) * op(b) where op optionally transposes.
// The kernel parallelizes over row panels of the output and uses an
// ikj loop order on packed row-major operands for unit-stride inner loops.
func gemm(out, a, b *Dense, transA, transB bool) {
	ar, ac := a.rows, a.cols
	if transA {
		ar, ac = ac, ar
	}
	br, bc := b.rows, b.cols
	if transB {
		br, bc = bc, br
	}
	if ac != br {
		panic("mat: gemm inner dimension mismatch")
	}
	// Materialize transposes once: the packed copies make the hot loop
	// unit-stride, which is worth the O(n²) copy for any nontrivial GEMM.
	ae := a
	if transA {
		ae = a.T()
	}
	be := b
	if transB {
		be = b.T()
	}

	work := ar * ac * bc
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw == 1 || ar == 1 {
		gemmRows(out, ae, be, 0, ar)
		return
	}
	if nw > (ar+gemmBlock-1)/gemmBlock {
		nw = (ar + gemmBlock - 1) / gemmBlock
	}
	var next int64
	var mu sync.Mutex
	claim := func() (int, int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= ar {
			return 0, 0, false
		}
		lo := int(next)
		hi := min(lo+gemmBlock, ar)
		next = int64(hi)
		return lo, hi, true
	}
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := claim()
				if !ok {
					return
				}
				gemmRows(out, ae, be, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// gemmRows computes rows [lo,hi) of out = a*b for row-major a, b.
func gemmRows(out, a, b *Dense, lo, hi int) {
	n, k := b.cols, a.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			axpy(orow, brow, av)
		}
	}
}

// axpy computes dst += s*src with 4-way unrolling.
func axpy(dst, src []float64, s float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += s * src[i]
		dst[i+1] += s * src[i+1]
		dst[i+2] += s * src[i+2]
		dst[i+3] += s * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += s * src[i]
	}
}

// MulVec returns a*x for a vector x (len = a.cols).
func MulVec(a *Dense, x []float64) []float64 {
	if len(x) != a.cols {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// MulVecT returns aᵀ*x for a vector x (len = a.rows).
func MulVecT(a *Dense, x []float64) []float64 {
	if len(x) != a.rows {
		panic("mat: MulVecT dimension mismatch")
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		axpy(out, a.Row(i), x[i])
	}
	return out
}

// Dot returns the dot product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}
