package mat

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the number of multiply-adds below which GEMM runs
// single-threaded with the simple unpacked kernels; spawning goroutines
// and packing panels for tiny products costs more than it saves.
const parallelThreshold = 64 * 64 * 64

// Register-blocking parameters of the packed kernel: the micro-kernel
// computes an mr×nr block of the output with mr·nr independent
// accumulators, reading A panels packed mr-interleaved and B panels packed
// nr-interleaved so the inner loop is two unit-stride streams. 2×4 keeps
// the 8 accumulators plus 6 operands inside the 16 amd64 vector registers;
// larger tiles spill and run slower in pure Go.
const (
	gemmMR = 2
	gemmNR = 4
	// gemmClaimPanels is the number of mr-row panels a worker claims per
	// atomic fetch-add when stealing work.
	gemmClaimPanels = 16
	// Cache-blocking factors: the packed B block is kc×nc ≤ 1 MiB so it
	// stays resident in a typical ≥2 MiB L2 across the whole m sweep, and
	// each packed A panel (mr×kc = 8 KiB) streams through L1.
	gemmKC = 512
	gemmNC = 256
)

// Mul returns a*b using a packed, cache-blocked, goroutine-parallel kernel.
func Mul(a, b *Dense) *Dense {
	out := getDenseUnpooled(a.rows, b.cols)
	MulInto(out, a, b)
	return out
}

// MulTA returns aᵀ*b.
func MulTA(a, b *Dense) *Dense {
	out := getDenseUnpooled(a.cols, b.cols)
	MulTAInto(out, a, b)
	return out
}

// MulTB returns a*bᵀ.
func MulTB(a, b *Dense) *Dense {
	out := getDenseUnpooled(a.rows, b.rows)
	MulTBInto(out, a, b)
	return out
}

// getDenseUnpooled allocates a fresh matrix outside the pool (the
// allocating API hands ownership to the caller, who must be free to keep
// it forever without starving the pool).
func getDenseUnpooled(rows, cols int) *Dense {
	return NewDense(rows, cols)
}

// MulInto sets dst = a*b without allocating. dst must not alias a or b.
func MulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic("mat: Mul dimension mismatch")
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic("mat: MulInto destination dimension mismatch")
	}
	checkNoAlias("MulInto", dst, a, b)
	gemm(dst, a, b, false, false)
	return dst
}

// MulTAInto sets dst = aᵀ*b without allocating and without materializing
// aᵀ. dst must not alias a or b.
func MulTAInto(dst, a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic("mat: MulTA dimension mismatch")
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic("mat: MulTAInto destination dimension mismatch")
	}
	checkNoAlias("MulTAInto", dst, a, b)
	gemm(dst, a, b, true, false)
	return dst
}

// MulTBInto sets dst = a*bᵀ without allocating and without materializing
// bᵀ. dst must not alias a or b.
func MulTBInto(dst, a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic("mat: MulTB dimension mismatch")
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		panic("mat: MulTBInto destination dimension mismatch")
	}
	checkNoAlias("MulTBInto", dst, a, b)
	gemm(dst, a, b, false, true)
	return dst
}

// checkNoAlias panics when dst shares backing storage with a or b. The
// check is exact for matrices managed by this package (whole-allocation
// backing slices compared by their first element).
func checkNoAlias(op string, dst *Dense, srcs ...*Dense) {
	if len(dst.data) == 0 {
		return
	}
	for _, s := range srcs {
		if len(s.data) != 0 && &dst.data[0] == &s.data[0] {
			panic("mat: " + op + " destination aliases an operand")
		}
	}
}

// gemm computes out = op(a) * op(b) where op optionally transposes.
//
// Large products take the packed path: operand panels are copied into
// pooled, contiguous mr-/nr-interleaved buffers (for the transposed
// variants this replaces the full transpose copy the old kernel made) and
// a 4×4 register-blocked micro-kernel runs over row panels of the output,
// distributed across GOMAXPROCS workers by atomic work-stealing. Small
// products fall back to unpacked ikj-style loops that also need no
// transpose copies.
func gemm(out, a, b *Dense, transA, transB bool) {
	ar, ac := a.rows, a.cols
	if transA {
		ar, ac = ac, ar
	}
	br, bc := b.rows, b.cols
	if transB {
		br, bc = bc, br
	}
	if ac != br {
		panic("mat: gemm inner dimension mismatch")
	}
	m, k, n := ar, ac, bc
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		out.Zero()
		return
	}
	if m*n*k < parallelThreshold || m == 1 || n == 1 {
		gemmSmall(out, a, b, transA, transB, m, k, n)
		return
	}
	gemmPacked(out, a, b, transA, transB, m, k, n)
}

// gemmSmall handles shapes where packing overhead dominates, with loop
// orders chosen per transpose case so every inner loop is unit-stride on
// the untransposed operands — no transpose is ever materialized.
func gemmSmall(out, a, b *Dense, transA, transB bool, m, k, n int) {
	switch {
	case !transA && !transB:
		out.Zero()
		gemmRows(out, a, b, 0, m)
	case transA && !transB:
		// out = aᵀb: rank-1 accumulation; row p of a holds column values
		// a[p, i] = op(a)[i, p], so out.Row(i) += a[p,i] * b.Row(p).
		out.Zero()
		for p := 0; p < a.rows; p++ {
			arow := a.data[p*a.cols : (p+1)*a.cols]
			brow := b.data[p*b.cols : (p+1)*b.cols]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				axpy(out.data[i*n:(i+1)*n], brow, av)
			}
		}
	case !transA && transB:
		// out[i,j] = a.Row(i) · b.Row(j): both unit-stride dots.
		for i := 0; i < m; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] = Dot(arow, b.data[j*k:(j+1)*k])
			}
		}
	default: // transA && transB
		out.Zero()
		// out[i,j] += a[p,i]*b[j,p]: keep b's row access unit-stride.
		for j := 0; j < n; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			for p := 0; p < k; p++ {
				bv := brow[p]
				if bv == 0 {
					continue
				}
				arow := a.data[p*a.cols : (p+1)*a.cols]
				for i := 0; i < m; i++ {
					out.data[i*n+j] += arow[i] * bv
				}
			}
		}
	}
}

// gemmPacked is the blocked kernel, organized as the classic three-level
// GotoBLAS loop nest: for each nc-wide column block and kc-deep slice of k,
// op(b) is packed once into nr-interleaved panels (an L2-resident block),
// then workers claim mr-row panels of the output by atomic work-stealing,
// pack the matching mr×kc slice of op(a) into a per-worker buffer, and
// sweep the micro-kernel across the column panels, accumulating into out.
// The k-slices are processed in a fixed sequential order, so the result is
// deterministic regardless of how workers interleave.
func gemmPacked(out, a, b *Dense, transA, transB bool, m, k, n int) {
	out.Zero()
	bp := getFloatsRaw(gemmKC * ((gemmNC + gemmNR - 1) / gemmNR) * gemmNR)
	mpanels := (m + gemmMR - 1) / gemmMR
	nw := runtime.GOMAXPROCS(0)
	if max := (mpanels + gemmClaimPanels - 1) / gemmClaimPanels; nw > max {
		nw = max
	}
	if nw < 1 {
		nw = 1
	}
	// Extra workers beyond the calling goroutine come from the shared
	// token pool (when installed), so a GEMM nested under scheduler stages
	// degrades to fewer workers instead of oversubscribing cores. The
	// k-slice accumulation order is fixed, so the result does not depend on
	// how many workers are granted.
	nw, releaseWorkers := acquireWorkers(nw)
	defer releaseWorkers()

	if nw == 1 {
		// Sequential path: no goroutines, no work-stealing state, and one
		// A-panel buffer hoisted across all cache blocks — zero per-block
		// allocations.
		ap := getFloatsRaw(gemmMR * gemmKC)
		for jc := 0; jc < n; jc += gemmNC {
			nc := min(gemmNC, n-jc)
			for pc := 0; pc < k; pc += gemmKC {
				kc := min(gemmKC, k-pc)
				packB(bp, b, transB, pc, kc, jc, nc)
				gemmSweep(out, a, transA, ap, bp, 0, mpanels, m, pc, kc, jc, nc)
			}
		}
		PutFloats(ap)
		PutFloats(bp)
		return
	}

	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(bp, b, transB, pc, kc, jc, nc)

			var next atomic.Int64
			var wg sync.WaitGroup
			wg.Add(nw)
			for w := 0; w < nw; w++ {
				go func() {
					defer wg.Done()
					ap := getFloatsRaw(gemmMR * kc)
					for {
						lo := int(next.Add(gemmClaimPanels)) - gemmClaimPanels
						if lo >= mpanels {
							break
						}
						hi := min(lo+gemmClaimPanels, mpanels)
						gemmSweep(out, a, transA, ap, bp, lo, hi, m, pc, kc, jc, nc)
					}
					PutFloats(ap)
				}()
			}
			wg.Wait()
		}
	}
	PutFloats(bp)
}

// gemmSweep runs the packed micro-kernel over output row panels [lo, hi)
// for one (pc, jc) cache block: each mr-row slice of op(a) is packed into
// ap, then swept across the nr-wide packed-B panels.
func gemmSweep(out, a *Dense, transA bool, ap, bp []float64, lo, hi, m, pc, kc, jc, nc int) {
	npanels := (nc + gemmNR - 1) / gemmNR
	for ip := lo; ip < hi; ip++ {
		i0 := ip * gemmMR
		rows := min(gemmMR, m-i0)
		packA(ap, a, transA, i0, rows, pc, kc)
		for jp := 0; jp < npanels; jp++ {
			j0 := jp * gemmNR
			microKernel(out, ap, bp[jp*kc*gemmNR:(jp+1)*kc*gemmNR],
				kc, i0, jc+j0, rows, min(gemmNR, nc-j0))
		}
	}
}

// packB copies the kc×nc block of op(b) at (pc, jc) into nr-interleaved
// column panels: panel jp holds block columns [jp*nr, jp*nr+nr) as
// bp[jp*kc*nr + p*nr + jj] = op(b)[pc+p, jc+jp*nr+jj], zero-padded past the
// matrix edge so the micro-kernel is branch-free.
func packB(bp []float64, b *Dense, transB bool, pc, kc, jc, nc int) {
	npanels := (nc + gemmNR - 1) / gemmNR
	for jp := 0; jp < npanels; jp++ {
		j0 := jc + jp*gemmNR
		cols := min(gemmNR, jc+nc-j0)
		panel := bp[jp*kc*gemmNR : (jp+1)*kc*gemmNR]
		if !transB {
			// op(b)[p, j] = b[p, j]: gather a short row slice per p.
			for p := 0; p < kc; p++ {
				src := b.data[(pc+p)*b.cols+j0 : (pc+p)*b.cols+j0+cols]
				dst := panel[p*gemmNR : p*gemmNR+gemmNR]
				copy(dst, src)
				for jj := cols; jj < gemmNR; jj++ {
					dst[jj] = 0
				}
			}
		} else {
			// op(b)[p, j] = b[j, p]: stream nr rows of b in parallel.
			for jj := 0; jj < cols; jj++ {
				src := b.data[(j0+jj)*b.cols+pc : (j0+jj)*b.cols+pc+kc]
				for p := 0; p < kc; p++ {
					panel[p*gemmNR+jj] = src[p]
				}
			}
			for jj := cols; jj < gemmNR; jj++ {
				for p := 0; p < kc; p++ {
					panel[p*gemmNR+jj] = 0
				}
			}
		}
	}
}

// packA copies rows [i0, i0+rows), k-slice [pc, pc+kc) of op(a)
// mr-interleaved: ap[p*mr + ii] = op(a)[i0+ii, pc+p], zero-padded to mr
// rows.
func packA(ap []float64, a *Dense, transA bool, i0, rows, pc, kc int) {
	if !transA {
		for ii := 0; ii < rows; ii++ {
			src := a.data[(i0+ii)*a.cols+pc : (i0+ii)*a.cols+pc+kc]
			for p := 0; p < kc; p++ {
				ap[p*gemmMR+ii] = src[p]
			}
		}
	} else {
		// op(a)[i, p] = a[p, i]: gather mr adjacent columns per row p.
		for p := 0; p < kc; p++ {
			src := a.data[(pc+p)*a.cols+i0 : (pc+p)*a.cols+i0+rows]
			dst := ap[p*gemmMR : p*gemmMR+gemmMR]
			copy(dst, src)
		}
		if rows < gemmMR {
			for p := 0; p < kc; p++ {
				for ii := rows; ii < gemmMR; ii++ {
					ap[p*gemmMR+ii] = 0
				}
			}
		}
	}
	if !transA && rows < gemmMR {
		for p := 0; p < kc; p++ {
			for ii := rows; ii < gemmMR; ii++ {
				ap[p*gemmMR+ii] = 0
			}
		}
	}
}

// microKernel computes the mr×nr output block at (i0, j0) from packed
// panels: mr·nr independent accumulators carried in registers across the
// whole k loop, two unit-stride input streams, then a masked store of the
// valid rows/cols (panels are zero-padded, so the accumulation itself is
// unconditional). Dispatches to the fused-multiply-add variant when the
// init-time calibration found hardware FMA.
func microKernel(out *Dense, ap, bp []float64, k, i0, j0, rows, cols int) {
	if fmaEnabled() {
		microKernel2x4FMA(out, ap, bp, k, i0, j0, rows, cols)
		return
	}
	microKernel2x4(out, ap, bp, k, i0, j0, rows, cols)
}

func microKernel2x4(out *Dense, ap, bp []float64, k, i0, j0, rows, cols int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	ia, ib := 0, 0
	for p := 0; p < k; p++ {
		a0, a1 := ap[ia], ap[ia+1]
		b0, b1, b2, b3 := bp[ib], bp[ib+1], bp[ib+2], bp[ib+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ia += gemmMR
		ib += gemmNR
	}
	storeMicroTile(out, i0, j0, rows, cols,
		[gemmMR][gemmNR]float64{{c00, c01, c02, c03}, {c10, c11, c12, c13}})
}

func microKernel2x4FMA(out *Dense, ap, bp []float64, k, i0, j0, rows, cols int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	ia, ib := 0, 0
	for p := 0; p < k; p++ {
		a0, a1 := ap[ia], ap[ia+1]
		b0, b1, b2, b3 := bp[ib], bp[ib+1], bp[ib+2], bp[ib+3]
		c00 = math.FMA(a0, b0, c00)
		c01 = math.FMA(a0, b1, c01)
		c02 = math.FMA(a0, b2, c02)
		c03 = math.FMA(a0, b3, c03)
		c10 = math.FMA(a1, b0, c10)
		c11 = math.FMA(a1, b1, c11)
		c12 = math.FMA(a1, b2, c12)
		c13 = math.FMA(a1, b3, c13)
		ia += gemmMR
		ib += gemmNR
	}
	storeMicroTile(out, i0, j0, rows, cols,
		[gemmMR][gemmNR]float64{{c00, c01, c02, c03}, {c10, c11, c12, c13}})
}

// storeMicroTile accumulates the register tile into out (masked to the
// valid rows/cols). Accumulating rather than assigning lets gemmPacked
// split k into cache-sized slices; out is zeroed once up front.
func storeMicroTile(out *Dense, i0, j0, rows, cols int, acc [gemmMR][gemmNR]float64) {
	for ii := 0; ii < rows; ii++ {
		orow := out.data[(i0+ii)*out.cols+j0:]
		for jj := 0; jj < cols; jj++ {
			orow[jj] += acc[ii][jj]
		}
	}
}

// gemmRows computes rows [lo,hi) of out += a*b for row-major a, b (the
// small-shape ikj fallback; out must be pre-zeroed).
func gemmRows(out, a, b *Dense, lo, hi int) {
	n, k := b.cols, a.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			axpy(orow, brow, av)
		}
	}
}

// axpy computes dst += s*src with 4-way unrolling (fused multiply-adds
// when the hardware has them).
func axpy(dst, src []float64, s float64) {
	if fmaEnabled() {
		axpyFMA(dst, src, s)
		return
	}
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += s * src[i]
		dst[i+1] += s * src[i+1]
		dst[i+2] += s * src[i+2]
		dst[i+3] += s * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += s * src[i]
	}
}

// MulVec returns a*x for a vector x (len = a.cols).
func MulVec(a *Dense, x []float64) []float64 {
	out := make([]float64, a.rows)
	MulVecInto(out, a, x)
	return out
}

// MulVecInto sets dst = a*x without allocating. dst must not alias x.
func MulVecInto(dst []float64, a *Dense, x []float64) {
	if len(x) != a.cols {
		panic("mat: MulVec dimension mismatch")
	}
	if len(dst) != a.rows {
		panic("mat: MulVecInto destination length mismatch")
	}
	for i := 0; i < a.rows; i++ {
		dst[i] = Dot(a.Row(i), x)
	}
}

// MulVecT returns aᵀ*x for a vector x (len = a.rows).
func MulVecT(a *Dense, x []float64) []float64 {
	out := make([]float64, a.cols)
	MulVecTInto(out, a, x)
	return out
}

// MulVecTInto sets dst = aᵀ*x without allocating. dst must not alias x.
func MulVecTInto(dst []float64, a *Dense, x []float64) {
	if len(x) != a.rows {
		panic("mat: MulVecT dimension mismatch")
	}
	if len(dst) != a.cols {
		panic("mat: MulVecTInto destination length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		axpy(dst, a.Row(i), x[i])
	}
}

// Dot returns the dot product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	if fmaEnabled() {
		return dotFMA(x, y)
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}
