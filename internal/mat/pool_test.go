package mat

import (
	"sync"
	"testing"
)

func TestPoolClassBuckets(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 64}, {64, 64}, {65, 128}, {1000, 1024}, {1 << 20, 1 << 20},
	}
	for _, c := range cases {
		class, size := poolClass(c.n)
		if class < 0 || size != c.wantCap {
			t.Fatalf("poolClass(%d) = (%d, %d), want cap %d", c.n, class, size, c.wantCap)
		}
	}
	if class, _ := poolClass(0); class >= 0 {
		t.Fatal("poolClass(0) should be unpoolable")
	}
	if class, _ := poolClass(1 << 27); class >= 0 {
		t.Fatal("oversized request should be unpoolable")
	}
}

func TestGetFloatsZeroedAndRecycled(t *testing.T) {
	a := GetFloats(100)
	for i := range a {
		a[i] = float64(i + 1)
	}
	PutFloats(a)
	b := GetFloats(100)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("GetFloats not zeroed at %d: %v", i, v)
		}
	}
	PutFloats(b)
}

func TestPutFloatsDropsForeignBuffers(t *testing.T) {
	// Buffers whose capacity is not an exact bucket size must be dropped,
	// never pooled: pooling them would hand out short-capacity slices.
	PutFloats(make([]float64, 100))  // cap 100 is not a power-of-two bucket
	PutFloats(nil)                   // no-op
	PutFloats(make([]float64, 0, 0)) // no-op
}

func TestGetDensePutDense(t *testing.T) {
	m := GetDense(5, 7)
	if m.Rows() != 5 || m.Cols() != 7 {
		t.Fatalf("GetDense dims %dx%d", m.Rows(), m.Cols())
	}
	for _, v := range m.Data() {
		if v != 0 {
			t.Fatal("GetDense not zeroed")
		}
	}
	m.Fill(3)
	PutDense(m)
	PutDense(nil) // no-op
}

func TestEnsureDense(t *testing.T) {
	m := EnsureDense(nil, 4, 4)
	m.Fill(1)
	same := EnsureDense(m, 4, 4)
	if same != m {
		t.Fatal("EnsureDense with matching dims must return the same matrix")
	}
	if same.At(0, 0) != 1 {
		t.Fatal("EnsureDense must preserve contents on a dimension match")
	}
	resized := EnsureDense(m, 8, 2)
	if resized.Rows() != 8 || resized.Cols() != 2 {
		t.Fatalf("EnsureDense resize: %dx%d", resized.Rows(), resized.Cols())
	}
	PutDense(resized)
}

func TestEnsureFloats(t *testing.T) {
	b := EnsureFloats(nil, 50)
	if len(b) != 50 {
		t.Fatalf("EnsureFloats len %d", len(b))
	}
	b2 := EnsureFloats(b, 30)
	if &b2[0] != &b[0] {
		t.Fatal("EnsureFloats must reuse a buffer with sufficient capacity")
	}
	b3 := EnsureFloats(b2, 1<<16)
	if len(b3) != 1<<16 {
		t.Fatalf("EnsureFloats grow len %d", len(b3))
	}
	PutFloats(b3)
}

func TestGetIntsPutInts(t *testing.T) {
	p := getInts(10)
	if len(p) != 10 {
		t.Fatalf("getInts len %d", len(p))
	}
	for i := range p {
		p[i] = i
	}
	putInts(p)
	q := getInts(5)
	if len(q) != 5 {
		t.Fatalf("getInts len %d", len(q))
	}
	putInts(q)
	putInts(nil) // no-op
}

func TestWorkspaceRelease(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Floats(64)
	m := ws.Dense(8, 8)
	if len(a) != 64 || m.Rows() != 8 {
		t.Fatal("workspace checkout dims")
	}
	ws.Release()
	// Reusable after release.
	b := ws.Floats(32)
	if len(b) != 32 {
		t.Fatal("workspace reuse after Release")
	}
	ws.Release()
}

func TestPoolStatsMonotone(t *testing.T) {
	h0, m0 := PoolStats()
	buf := GetFloats(128)
	PutFloats(buf)
	buf = GetFloats(128) // guaranteed hit: the bucket now holds a buffer
	PutFloats(buf)
	h1, m1 := PoolStats()
	if h1 < h0 || m1 < m0 {
		t.Fatalf("PoolStats went backwards: (%d,%d) -> (%d,%d)", h0, m0, h1, m1)
	}
	if h1+m1 < h0+m0+2 {
		t.Fatalf("PoolStats missed checkouts: (%d,%d) -> (%d,%d)", h0, m0, h1, m1)
	}
}

// TestPoolConcurrentHammer drives Get/Put from many goroutines under -race
// and asserts the pool never hands the same live buffer to two owners:
// every checked-out backing array (keyed by its first element's address)
// must be unique among live checkouts.
func TestPoolConcurrentHammer(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
	)
	var live sync.Map // &buf[0] -> struct{}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(seed uint64) {
			defer wg.Done()
			rng := NewRNG(seed)
			for r := 0; r < rounds; r++ {
				n := 64 + rng.Intn(512)
				switch r % 3 {
				case 0:
					buf := GetFloats(n)
					key := &buf[0]
					if _, loaded := live.LoadOrStore(key, struct{}{}); loaded {
						t.Error("pool handed out a live float buffer twice")
						return
					}
					buf[0] = float64(r)
					live.Delete(key)
					PutFloats(buf)
				case 1:
					m := GetDense(8, n/8)
					key := &m.Data()[0]
					if _, loaded := live.LoadOrStore(key, struct{}{}); loaded {
						t.Error("pool handed out a live Dense buffer twice")
						return
					}
					m.Set(0, 0, float64(r))
					live.Delete(key)
					PutDense(m)
				default:
					p := getInts(8 + rng.Intn(32))
					p[0] = r
					putInts(p)
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
}
