package mat

import (
	"math"
	"testing"
)

// These property tests pin the contract of every *Into kernel variant:
// each must agree exactly (bit-for-bit, since both run the same arithmetic
// in the same order) with its allocating counterpart on random shapes, and
// each must reject a destination that aliases an operand.

func randMat(rng *RNG, r, c int) *Dense { return RandN(rng, r, c, 1) }

func sameBits(t *testing.T, name string, want, got *Dense) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() {
		t.Fatalf("%s: dims %dx%d vs %dx%d", name, want.Rows(), want.Cols(), got.Rows(), got.Cols())
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, wd[i], gd[i])
		}
	}
}

func sameBitsVec(t *testing.T, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: len %d vs %d", name, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, want[i], got[i])
		}
	}
}

// TestIntoMatchesAllocating fans the whole *Into surface across a grid of
// shapes that crosses the packed-GEMM and small-product thresholds.
func TestIntoMatchesAllocating(t *testing.T) {
	rng := NewRNG(7)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {17, 9, 23}, {32, 64, 16}, {65, 70, 67},
	}
	for _, s := range shapes {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.k, s.n)
		at := a.T()
		bt := b.T()
		g := randMat(rng, s.m, s.n)

		sameBits(t, "MulInto", Mul(a, b), MulInto(GetDense(s.m, s.n), a, b))
		sameBits(t, "MulTAInto", MulTA(at, b), MulTAInto(GetDense(s.m, s.n), at, b))
		sameBits(t, "MulTBInto", MulTB(a, bt), MulTBInto(GetDense(s.m, s.n), a, bt))

		sameBits(t, "TInto", a.T(), a.TInto(GetDense(s.k, s.m)))
		sameBits(t, "HadamardInto", Hadamard(a, a), func() *Dense {
			d := GetDense(s.m, s.k)
			HadamardInto(d, a, a)
			return d
		}())
		sameBits(t, "SubInto", Sub(g, g), func() *Dense {
			d := GetDense(s.m, s.n)
			SubInto(d, g, g)
			return d
		}())

		sameBits(t, "GramInto", Gram(a), func() *Dense {
			d := GetDense(s.m, s.m)
			GramInto(d, a)
			return d
		}())
		sameBits(t, "GramTInto", GramT(a), func() *Dense {
			d := GetDense(s.k, s.k)
			GramTInto(d, a)
			return d
		}())

		idx := []int{s.m - 1, 0, s.m / 2}
		sameBits(t, "SelectRowsInto", a.SelectRows(idx), a.SelectRowsInto(GetDense(len(idx), s.k), idx))

		sameBits(t, "VStackInto", VStack(a, a), func() *Dense {
			d := GetDense(2*s.m, s.k)
			VStackInto(d, a, a)
			return d
		}())
		sameBits(t, "BlockDiagInto", BlockDiag(a, b), BlockDiagInto(GetDense(s.m+s.k, s.k+s.n), a, b))

		x := GetFloats(s.k)
		for i := range x {
			x[i] = rng.Float64()
		}
		sameBitsVec(t, "MulVecInto", MulVec(a, x), func() []float64 {
			d := GetFloats(s.m)
			MulVecInto(d, a, x)
			return d
		}())
		y := GetFloats(s.m)
		for i := range y {
			y[i] = rng.Float64()
		}
		sameBitsVec(t, "MulVecTInto", MulVecT(a, y), func() []float64 {
			d := GetFloats(s.k)
			MulVecTInto(d, a, y)
			return d
		}())

		sameBitsVec(t, "RowNormsInto", RowNorms(a), func() []float64 {
			d := GetFloats(s.m)
			RowNormsInto(d, a)
			return d
		}())
	}
}

// TestKernelIntoMatchesAllocating covers the Khatri-Rao family used by the
// SNGD/HyLo inner loops.
func TestKernelIntoMatchesAllocating(t *testing.T) {
	rng := NewRNG(11)
	am, ai, go_ := 24, 13, 7
	a := randMat(rng, am, ai)
	g := randMat(rng, am, go_)

	sameBits(t, "KernelMatrixInto", KernelMatrix(a, g), func() *Dense {
		d := GetDense(am, am)
		KernelMatrixInto(d, a, g)
		return d
	}())
	sameBits(t, "KronInto", Kron(a, g), func() *Dense {
		d := GetDense(am*am, ai*go_)
		KronInto(d, a, g)
		return d
	}())

	v := make([]float64, ai*go_)
	for i := range v {
		v[i] = rng.Float64()
	}
	sameBitsVec(t, "KhatriRaoApplyInto", KhatriRaoApply(a, g, v), func() []float64 {
		d := GetFloats(am)
		KhatriRaoApplyInto(d, a, g, v)
		return d
	}())
	y := make([]float64, am)
	for i := range y {
		y[i] = rng.Float64()
	}
	sameBitsVec(t, "KhatriRaoApplyTInto", KhatriRaoApplyT(a, g, y), func() []float64 {
		d := GetFloats(ai * go_)
		KhatriRaoApplyTInto(d, a, g, y)
		return d
	}())
}

// TestInvIntoMatchesInv checks the pooled LU inversion against the
// allocating one, including the singular-input error path.
func TestInvIntoMatchesInv(t *testing.T) {
	rng := NewRNG(3)
	for _, n := range []int{1, 4, 17, 40} {
		a := randMat(rng, n, n)
		a.AddDiag(float64(n)) // keep it comfortably nonsingular
		want, err := Inv(a)
		if err != nil {
			t.Fatalf("Inv(%d): %v", n, err)
		}
		got := GetDense(n, n)
		if err := InvInto(got, a); err != nil {
			t.Fatalf("InvInto(%d): %v", n, err)
		}
		sameBits(t, "InvInto", want, got)
		PutDense(got)
	}

	sing := NewDense(3, 3) // all zeros
	dst := GetDense(3, 3)
	if err := InvInto(dst, sing); err == nil {
		t.Fatal("InvInto of a singular matrix: want error, got nil")
	}
	PutDense(dst)
}

// TestIntoAliasPanics pins that every Into kernel with an aliasing hazard
// rejects dst == operand instead of silently corrupting the result.
func TestIntoAliasPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: aliased destination did not panic", name)
			}
		}()
		fn()
	}
	sq := RandN(NewRNG(5), 8, 8, 1)
	mustPanic("MulInto", func() { MulInto(sq, sq, sq) })
	mustPanic("MulTAInto", func() { MulTAInto(sq, sq, sq) })
	mustPanic("MulTBInto", func() { MulTBInto(sq, sq, sq) })
	mustPanic("TInto", func() { sq.TInto(sq) })
	mustPanic("GramInto", func() { GramInto(sq, sq) })
	mustPanic("InvInto", func() { _ = InvInto(sq, sq) })
}

// TestIntoDimensionPanics pins the destination-shape contract.
func TestIntoDimensionPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: wrong-shaped destination did not panic", name)
			}
		}()
		fn()
	}
	rng := NewRNG(9)
	a := randMat(rng, 4, 6)
	b := randMat(rng, 6, 3)
	bad := NewDense(5, 5)
	mustPanic("MulInto", func() { MulInto(bad, a, b) })
	mustPanic("TInto", func() { a.TInto(bad) })
	mustPanic("SelectRowsInto", func() { a.SelectRowsInto(bad, []int{0, 1}) })
	mustPanic("BlockDiagInto", func() { BlockDiagInto(bad, a, b) })
	mustPanic("InvInto", func() { _ = InvInto(bad, randMat(rng, 4, 4)) })
}
