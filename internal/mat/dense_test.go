package mat

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d; want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %g; want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %g; want 7.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 8 {
		t.Fatalf("after Add, At(1,2) = %g; want 8", got)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %g; want %g", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := NewRNG(1)
	m := RandN(rng, 17, 29, 1)
	if !Equal(m, m.T().T(), 0) {
		t.Fatal("transpose is not an involution")
	}
}

func TestTransposeElements(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d; want 3,2", r, c)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", tr)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAddScaledAndSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	a.AddScaled(b, 0.1)
	want := FromRows([][]float64{{2, 4}, {6, 8}})
	if !Equal(a, want, 1e-12) {
		t.Fatalf("AddScaled = %v; want %v", a, want)
	}
	d := Sub(want, a)
	if d.FrobNorm() != 0 {
		t.Fatal("Sub of equal matrices is nonzero")
	}
}

func TestAddDiagTrace(t *testing.T) {
	m := NewDense(3, 3)
	m.AddDiag(2.5)
	if got := m.Trace(); math.Abs(got-7.5) > 1e-15 {
		t.Fatalf("Trace = %g; want 7.5", got)
	}
}

func TestSelectRows(t *testing.T) {
	m := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	s := m.SelectRows([]int{3, 1})
	want := FromRows([][]float64{{4, 4}, {2, 2}})
	if !Equal(s, want, 0) {
		t.Fatalf("SelectRows = %v; want %v", s, want)
	}
}

func TestSliceRows(t *testing.T) {
	m := FromRows([][]float64{{1}, {2}, {3}, {4}})
	s := m.SliceRows(1, 3)
	want := FromRows([][]float64{{2}, {3}})
	if !Equal(s, want, 0) {
		t.Fatalf("SliceRows = %v; want %v", s, want)
	}
}

func TestVStack(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	v := VStack(a, b)
	want := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !Equal(v, want, 0) {
		t.Fatalf("VStack = %v; want %v", v, want)
	}
}

func TestBlockDiag(t *testing.T) {
	a := FromRows([][]float64{{1}})
	b := FromRows([][]float64{{2, 3}, {4, 5}})
	d := BlockDiag(a, b)
	want := FromRows([][]float64{
		{1, 0, 0},
		{0, 2, 3},
		{0, 4, 5},
	})
	if !Equal(d, want, 0) {
		t.Fatalf("BlockDiag = %v; want %v", d, want)
	}
}

func TestRowColAccess(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := m.Col(1); got[0] != 2 || got[1] != 5 {
		t.Fatalf("Col(1) = %v", got)
	}
	r := m.Row(1)
	r[0] = 44 // Row aliases storage
	if m.At(1, 0) != 44 {
		t.Fatal("Row does not alias storage")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

// Property: (A+B)ᵀ = Aᵀ + Bᵀ on random small matrices.
func TestTransposeAdditivityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed) + 1)
		r, c := 1+rng.Intn(12), 1+rng.Intn(12)
		a := RandN(rng, r, c, 1)
		b := RandN(rng, r, c, 1)
		lhs := a.Clone().AddMat(b).T()
		rhs := a.T().AddMat(b.T())
		return Equal(lhs, rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringTruncation(t *testing.T) {
	rng := NewRNG(200)
	small := RandN(rng, 2, 2, 1)
	s := small.String()
	if !strings.Contains(s, "Dense(2x2)") {
		t.Fatalf("String missing header: %q", s)
	}
	big := RandN(rng, 20, 20, 1)
	bs := big.String()
	if !strings.Contains(bs, "...") {
		t.Fatal("large matrix String not truncated")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatal("empty FromRows should be 0x0")
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseDataLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDenseData(2, 2, make([]float64, 3))
}

func TestSetRowAndCopyFromPanics(t *testing.T) {
	m := NewDense(2, 3)
	m.SetRow(1, []float64{1, 2, 3})
	if m.At(1, 2) != 3 {
		t.Fatal("SetRow failed")
	}
	func() {
		defer func() { recover() }()
		m.SetRow(0, []float64{1})
		t.Error("SetRow length mismatch did not panic")
	}()
	func() {
		defer func() { recover() }()
		m.CopyFrom(NewDense(3, 3))
		t.Error("CopyFrom mismatch did not panic")
	}()
}

func TestMaxAbsAndSum(t *testing.T) {
	m := FromRows([][]float64{{-3, 1}, {2, -0.5}})
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %g", m.MaxAbs())
	}
	if m.Sum() != -0.5 {
		t.Fatalf("Sum = %g", m.Sum())
	}
}

func TestEqualDimensionMismatch(t *testing.T) {
	if Equal(NewDense(1, 2), NewDense(2, 1), 1) {
		t.Fatal("Equal accepted mismatched dims")
	}
}

func TestRNGPermAndUniform(t *testing.T) {
	rng := NewRNG(201)
	p := rng.Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
	u := RandUniform(rng, 4, 4, -1, 1)
	for _, v := range u.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("uniform value %g out of range", v)
		}
	}
}
