package mat_test

import (
	"fmt"

	"repro/internal/mat"
)

// ExampleInterpolativeDecomp shows the row ID contract Q ≈ P·Q[S,:].
func ExampleInterpolativeDecomp() {
	rng := mat.NewRNG(1)
	q := mat.RandLowRank(rng, 10, 10, 2, 0) // exactly rank 2
	p, s := mat.InterpolativeDecomp(q, 2)
	rec := mat.Mul(p, q.SelectRows(s))
	fmt.Printf("selected %d rows, reconstruction error < 1e-8: %v\n",
		len(s), mat.MaxAbsDiff(rec, q) < 1e-8)
	// Output:
	// selected 2 rows, reconstruction error < 1e-8: true
}

// ExampleKernelMatrix demonstrates the Khatri-Rao kernel identity of
// Eq. (7): (A⊙G)(A⊙G)ᵀ = AAᵀ ∘ GGᵀ.
func ExampleKernelMatrix() {
	rng := mat.NewRNG(2)
	a := mat.RandN(rng, 6, 3, 1)
	g := mat.RandN(rng, 6, 4, 1)
	k1 := mat.KernelMatrix(a, g)
	k2 := mat.Gram(mat.KhatriRao(a, g))
	fmt.Println("identity holds:", mat.MaxAbsDiff(k1, k2) < 1e-10)
	// Output:
	// identity holds: true
}

// ExampleCG solves a small SPD system without factorizing it.
func ExampleCG() {
	a := mat.FromRows([][]float64{{4, 1}, {1, 3}})
	x, iters := mat.CG(a, []float64{1, 2}, 1e-12, 10)
	fmt.Printf("x ≈ [%.4f %.4f] in %d iterations\n", x[0], x[1], iters)
	// Output:
	// x ≈ [0.0909 0.6364] in 2 iterations
}
