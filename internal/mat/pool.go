package mat

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// This file implements the workspace/pool layer behind the package's
// allocation-free hot path. Buffers are checked out of size-bucketed
// sync.Pools (bucket = next power of two of the element count) and returned
// explicitly with Put*. The steady state of an iterative optimizer then
// recycles the same handful of buffers forever instead of exercising the
// Go allocator and GC every step.
//
// Ownership rules (see DESIGN.md "Performance: memory discipline"):
//   - whoever calls Get*/Workspace.* owns the buffer and is the only party
//     allowed to Put it back, exactly once;
//   - a buffer must not be used after Put;
//   - matrices returned by the allocating API (Mul, Gram, ...) are NOT
//     pooled and must never be passed to PutDense.

// Telemetry counter names for pool effectiveness; exported so dashboards
// and the README agree on the vocabulary.
const (
	// MetricPoolHits counts checkouts served by a recycled buffer.
	MetricPoolHits = "mat_pool_hits"
	// MetricPoolMisses counts checkouts that had to allocate.
	MetricPoolMisses = "mat_pool_misses"
)

// Pool buckets cover 2^minPoolShift .. 2^maxPoolShift float64s; requests
// below the smallest bucket round up, requests above the largest are
// allocated directly (and dropped on Put).
const (
	minPoolShift = 6  // 64 floats = 512 B
	maxPoolShift = 26 // 64 Mi floats = 512 MiB
)

var (
	floatPools [maxPoolShift - minPoolShift + 1]sync.Pool
	poolHits   atomic.Int64
	poolMisses atomic.Int64

	// headerBoxes recycles the *[]float64 boxes that carry slices through
	// the sync.Pools. Storing a bare []float64 in a sync.Pool heap-boxes
	// the 3-word slice header on every Put; cycling pre-allocated boxes
	// (single-word pointers, which interface conversion does not box)
	// makes the steady-state Get/Put pair allocation-free.
	headerBoxes = sync.Pool{New: func() any { return new([]float64) }}

	// denseStructs recycles the Dense headers handed out by GetDense so a
	// pool hit allocates neither the backing array nor the struct.
	denseStructs = sync.Pool{New: func() any { return new(Dense) }}

	// intSlices/intBoxes recycle the small index vectors (LU pivots, QR
	// permutations) the decomposition hot paths need, with the same
	// boxed-header trick as the float pools. Index vectors are small and
	// similarly sized, so a single unbucketed pool suffices.
	intSlices sync.Pool
	intBoxes  = sync.Pool{New: func() any { return new([]int) }}
)

// poolClass returns the bucket index and capacity for a request of n
// floats, or (-1, n) when the request is unpoolable (too large).
func poolClass(n int) (int, int) {
	if n <= 0 {
		return -1, 0
	}
	shift := bits.Len(uint(n - 1))
	if shift < minPoolShift {
		shift = minPoolShift
	}
	if shift > maxPoolShift {
		return -1, n
	}
	return shift - minPoolShift, 1 << shift
}

// getFloatsRaw checks out a length-n slice with unspecified contents.
func getFloatsRaw(n int) []float64 {
	class, size := poolClass(n)
	if class < 0 {
		if n == 0 {
			return nil
		}
		poolMisses.Add(1)
		if telemetry.Enabled() {
			telemetry.IncCounter(MetricPoolMisses, 1)
		}
		return make([]float64, n)
	}
	if v := floatPools[class].Get(); v != nil {
		poolHits.Add(1)
		if telemetry.Enabled() {
			telemetry.IncCounter(MetricPoolHits, 1)
		}
		h := v.(*[]float64)
		buf := *h
		*h = nil
		headerBoxes.Put(h)
		return buf[:n]
	}
	poolMisses.Add(1)
	if telemetry.Enabled() {
		telemetry.IncCounter(MetricPoolMisses, 1)
	}
	return make([]float64, size)[:n]
}

// GetFloats checks out a zeroed length-n slice from the pool. Return it
// with PutFloats when done.
func GetFloats(n int) []float64 {
	buf := getFloatsRaw(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// PutFloats returns a slice obtained from GetFloats (or the backing slice
// of a pooled Dense) to the pool. Slices whose capacity is not an exact
// bucket size — anything not handed out by this package — are dropped, so
// accidentally pooling foreign buffers is harmless. buf must not be used
// after Put.
func PutFloats(buf []float64) {
	c := cap(buf)
	if c == 0 {
		return
	}
	class, size := poolClass(c)
	if class < 0 || c != size {
		return
	}
	h := headerBoxes.Get().(*[]float64)
	*h = buf[:c]
	floatPools[class].Put(h)
}

// Byte pools mirror the float pools (same bucket shifts, counted in
// bytes) for wire-encoding scratch: the distributed transport encodes
// and decodes matrix payloads every collective, and pooling those
// buffers keeps the steady-state comm path allocation-free too.
var (
	bytePools [maxPoolShift - minPoolShift + 1]sync.Pool
	byteBoxes = sync.Pool{New: func() any { return new([]byte) }}
)

// GetBytes checks out a length-n byte slice with unspecified contents
// whose capacity is an exact pool bucket (so append within capacity
// never reallocates). Return it with PutBytes when done.
func GetBytes(n int) []byte {
	class, size := poolClass(n)
	if class < 0 {
		if n == 0 {
			return nil
		}
		poolMisses.Add(1)
		if telemetry.Enabled() {
			telemetry.IncCounter(MetricPoolMisses, 1)
		}
		return make([]byte, n)
	}
	if v := bytePools[class].Get(); v != nil {
		poolHits.Add(1)
		if telemetry.Enabled() {
			telemetry.IncCounter(MetricPoolHits, 1)
		}
		h := v.(*[]byte)
		buf := *h
		*h = nil
		byteBoxes.Put(h)
		return buf[:n]
	}
	poolMisses.Add(1)
	if telemetry.Enabled() {
		telemetry.IncCounter(MetricPoolMisses, 1)
	}
	return make([]byte, size)[:n]
}

// PutBytes returns a slice obtained from GetBytes to the pool. Like
// PutFloats, slices whose capacity is not an exact bucket size are
// dropped, so pooling foreign buffers is harmless. buf must not be used
// after Put.
func PutBytes(buf []byte) {
	c := cap(buf)
	if c == 0 {
		return
	}
	class, size := poolClass(c)
	if class < 0 || c != size {
		return
	}
	h := byteBoxes.Get().(*[]byte)
	*h = buf[:c]
	bytePools[class].Put(h)
}

// getInts checks out a length-n int slice with unspecified contents.
func getInts(n int) []int {
	if v := intSlices.Get(); v != nil {
		h := v.(*[]int)
		buf := *h
		*h = nil
		intBoxes.Put(h)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]int, n)
}

// putInts returns a slice obtained from getInts to the pool.
func putInts(buf []int) {
	if cap(buf) == 0 {
		return
	}
	h := intBoxes.Get().(*[]int)
	*h = buf[:cap(buf)]
	intSlices.Put(h)
}

// PoolStats returns the cumulative checkout hit/miss counts, the same
// numbers published as the mat_pool_hits / mat_pool_misses telemetry
// counters.
func PoolStats() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}

// GetDense checks out a zeroed rows×cols matrix backed by pooled storage.
// Return it with PutDense.
func GetDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("mat: GetDense negative dimension")
	}
	m := getDenseRaw(rows, cols)
	m.Zero()
	return m
}

// getDenseRaw is GetDense without the zeroing pass, for destinations that
// are fully overwritten. The struct itself comes from a recycled-header
// pool so a hit performs zero allocations.
func getDenseRaw(rows, cols int) *Dense {
	m := denseStructs.Get().(*Dense)
	m.rows, m.cols, m.data = rows, cols, getFloatsRaw(rows*cols)
	return m
}

// PutDense returns a pooled matrix's storage to the pool. m must have come
// from GetDense/EnsureDense (matrices allocated with NewDense are silently
// dropped) and must not be used after Put. Nil is ignored.
func PutDense(m *Dense) {
	if m == nil {
		return
	}
	PutFloats(m.data)
	m.data = nil
	m.rows, m.cols = 0, 0
	denseStructs.Put(m)
}

// EnsureDense returns a rows×cols matrix for use as a persistent, reusable
// workspace: if m already has exactly those dimensions it is returned
// unchanged (contents preserved); otherwise m's storage is recycled and a
// pooled replacement is checked out. The replacement's contents are
// UNSPECIFIED — callers that need zeros must call Zero. Typical use:
//
//	st.buf = mat.EnsureDense(st.buf, r, c)
func EnsureDense(m *Dense, rows, cols int) *Dense {
	if m != nil && m.rows == rows && m.cols == cols {
		return m
	}
	if m != nil {
		PutDense(m)
	}
	return getDenseRaw(rows, cols)
}

// EnsureFloats is EnsureDense for vectors: it returns a length-n slice,
// reusing buf when its capacity suffices (contents beyond are unspecified)
// and recycling it through the pool otherwise.
func EnsureFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	if buf != nil {
		PutFloats(buf)
	}
	return getFloatsRaw(n)
}

// Workspace tracks a set of pooled checkouts so they can be released
// together. It is the convenient form for scoped scratch:
//
//	ws := mat.NewWorkspace()
//	defer ws.Release()
//	tmp := ws.Dense(m, n)
//
// A Workspace is not safe for concurrent use; each goroutine should own
// its own.
type Workspace struct {
	floats [][]float64
	dense  []*Dense
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Floats checks out a zeroed length-n slice owned by the workspace.
func (w *Workspace) Floats(n int) []float64 {
	buf := GetFloats(n)
	w.floats = append(w.floats, buf)
	return buf
}

// Dense checks out a zeroed rows×cols matrix owned by the workspace.
func (w *Workspace) Dense(rows, cols int) *Dense {
	m := GetDense(rows, cols)
	w.dense = append(w.dense, m)
	return m
}

// Release returns every checkout to the pool. The workspace is empty and
// reusable afterwards; buffers handed out earlier must not be used again.
func (w *Workspace) Release() {
	for i, buf := range w.floats {
		PutFloats(buf)
		w.floats[i] = nil
	}
	w.floats = w.floats[:0]
	for i, m := range w.dense {
		PutDense(m)
		w.dense[i] = nil
	}
	w.dense = w.dense[:0]
}
