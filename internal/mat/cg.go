package mat

// CG solves the SPD system a·x = b by conjugate gradients, returning the
// solution and the iteration count. The solve is matrix-free with respect
// to factorization — only matrix-vector products with a are formed — which
// gives SNGD-family methods an O(k·m²) alternative to the O(m³) explicit
// kernel inverse when few solves per kernel are needed.
//
// Iteration stops when ‖r‖ ≤ tol·‖b‖ or after maxIter steps.
func CG(a *Dense, b []float64, tol float64, maxIter int) ([]float64, int) {
	n := a.Rows()
	if len(b) != n {
		panic("mat: CG dimension mismatch")
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	bNorm := Norm2(b)
	if bNorm == 0 {
		return x, 0
	}
	rs := Dot(r, r)
	for it := 1; it <= maxIter; it++ {
		ap := MulVec(a, p)
		den := Dot(p, ap)
		if den <= 0 {
			// Loss of positive-definiteness (numerical); return the best
			// iterate so far.
			return x, it
		}
		alpha := rs / den
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := Dot(r, r)
		if Norm2(r) <= tol*bNorm {
			return x, it
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x, maxIter
}

// CGSolveColumns solves a·X = B column-wise with CG; useful for small
// numbers of right-hand sides without factorizing a.
func CGSolveColumns(a, b *Dense, tol float64, maxIter int) *Dense {
	out := NewDense(b.Rows(), b.Cols())
	col := make([]float64, b.Rows())
	for j := 0; j < b.Cols(); j++ {
		for i := 0; i < b.Rows(); i++ {
			col[i] = b.At(i, j)
		}
		x, _ := CG(a, col, tol, maxIter)
		for i := 0; i < b.Rows(); i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}
