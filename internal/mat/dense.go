// Package mat implements the dense linear algebra kernels used throughout
// the HyLo reproduction: parallel blocked matrix multiplication, Gram and
// Hadamard products, Cholesky and LU factorizations, symmetric
// eigendecomposition, and the column-pivoted QR that backs the Khatri-Rao
// interpolative decomposition (KID).
//
// Matrices are dense, row-major, float64. The package is deterministic (no
// global RNG state is consulted) and depends only on the stdlib plus the
// in-repo telemetry counters. Hot-path kernels come in allocating and
// *Into form; the latter write into caller-owned (usually pooled)
// destinations — see pool.go and DESIGN.md "Performance: memory
// discipline" for the ownership rules.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense row-major matrix. The zero value is an empty matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (row-major, length rows*cols) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("mat: ragged rows")
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to the element at (i, j).
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Data returns the underlying row-major backing slice (not a copy).
func (m *Dense) Data() []float64 { return m.data }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic("mat: SetRow length mismatch")
	}
	copy(m.Row(i), v)
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	n := NewDense(m.rows, m.cols)
	copy(n.data, m.data)
	return n
}

// CopyFrom copies the contents of src into m. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("mat: CopyFrom dimension mismatch")
	}
	copy(m.data, src.data)
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	return m.TInto(NewDense(m.cols, m.rows))
}

// TInto writes the transpose of m into t (cols×rows, fully overwritten)
// and returns t. t must not alias m.
func (m *Dense) TInto(t *Dense) *Dense {
	if t.rows != m.cols || t.cols != m.rows {
		panic("mat: TInto destination dimension mismatch")
	}
	if len(m.data) != 0 && len(t.data) != 0 && &m.data[0] == &t.data[0] {
		panic("mat: TInto destination aliases the source")
	}
	const bs = 32 // cache-friendly block transpose
	for i0 := 0; i0 < m.rows; i0 += bs {
		imax := min(i0+bs, m.rows)
		for j0 := 0; j0 < m.cols; j0 += bs {
			jmax := min(j0+bs, m.cols)
			for i := i0; i < imax; i++ {
				row := m.data[i*m.cols:]
				for j := j0; j < jmax; j++ {
					t.data[j*t.cols+i] = row[j]
				}
			}
		}
	}
	return t
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddScaled sets m = m + s*other in place and returns m.
func (m *Dense) AddScaled(other *Dense, s float64) *Dense {
	if m.rows != other.rows || m.cols != other.cols {
		panic("mat: AddScaled dimension mismatch")
	}
	for i, v := range other.data {
		m.data[i] += s * v
	}
	return m
}

// AddMat sets m = m + other in place and returns m.
func (m *Dense) AddMat(other *Dense) *Dense { return m.AddScaled(other, 1) }

// Sub returns a new matrix a - b.
func Sub(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: Sub dimension mismatch")
	}
	out := NewDense(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// AddDiag adds alpha to every diagonal element in place and returns m.
func (m *Dense) AddDiag(alpha float64) *Dense {
	n := min(m.rows, m.cols)
	for i := 0; i < n; i++ {
		m.data[i*m.cols+i] += alpha
	}
	return m
}

// Diag returns a copy of the main diagonal.
func (m *Dense) Diag() []float64 {
	n := min(m.rows, m.cols)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.data[i*m.cols+i]
	}
	return d
}

// Trace returns the sum of diagonal elements.
func (m *Dense) Trace() float64 {
	var t float64
	n := min(m.rows, m.cols)
	for i := 0; i < n; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// SelectRows returns a new matrix containing the given rows of m, in order.
func (m *Dense) SelectRows(idx []int) *Dense {
	return m.SelectRowsInto(NewDense(len(idx), m.cols), idx)
}

// SelectRowsInto writes rows idx of m into dst (len(idx)×cols, fully
// overwritten) and returns dst. dst must not alias m.
func (m *Dense) SelectRowsInto(dst *Dense, idx []int) *Dense {
	if dst.rows != len(idx) || dst.cols != m.cols {
		panic("mat: SelectRowsInto destination dimension mismatch")
	}
	for k, i := range idx {
		copy(dst.Row(k), m.Row(i))
	}
	return dst
}

// SliceRows returns a view-free copy of rows [i0, i1).
func (m *Dense) SliceRows(i0, i1 int) *Dense {
	if i0 < 0 || i1 > m.rows || i0 > i1 {
		panic("mat: SliceRows out of range")
	}
	out := NewDense(i1-i0, m.cols)
	copy(out.data, m.data[i0*m.cols:i1*m.cols])
	return out
}

// VStack stacks matrices vertically (all must share the column count).
func VStack(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	cols := ms[0].cols
	rows := 0
	for _, m := range ms {
		if m.cols != cols {
			panic("mat: VStack column mismatch")
		}
		rows += m.rows
	}
	out := NewDense(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:], m.data)
		off += len(m.data)
	}
	return out
}

// BlockDiag builds a block-diagonal matrix from square or rectangular blocks.
func BlockDiag(blocks ...*Dense) *Dense {
	var rows, cols int
	for _, b := range blocks {
		rows += b.rows
		cols += b.cols
	}
	return BlockDiagInto(NewDense(rows, cols), blocks...)
}

// BlockDiagInto assembles the block-diagonal matrix into dst, which must
// be pre-zeroed with dimensions matching the summed block sizes.
func BlockDiagInto(dst *Dense, blocks ...*Dense) *Dense {
	var rows, cols int
	for _, b := range blocks {
		rows += b.rows
		cols += b.cols
	}
	if dst.rows != rows || dst.cols != cols {
		panic("mat: BlockDiagInto destination dimension mismatch")
	}
	r, c := 0, 0
	for _, b := range blocks {
		for i := 0; i < b.rows; i++ {
			copy(dst.data[(r+i)*cols+c:(r+i)*cols+c+b.cols], b.Row(i))
		}
		r += b.rows
		c += b.cols
	}
	return dst
}

// Equal reports whether a and b have identical dimensions and all elements
// within tol of each other.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: MaxAbsDiff dimension mismatch")
	}
	var d float64
	for i := range a.data {
		if v := math.Abs(a.data[i] - b.data[i]); v > d {
			d = v
		}
	}
	return d
}

// String renders the matrix for debugging; large matrices are truncated.
func (m *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%dx%d)[\n", m.rows, m.cols)
	maxR, maxC := min(m.rows, 8), min(m.cols, 8)
	for i := 0; i < maxR; i++ {
		b.WriteString("  ")
		for j := 0; j < maxC; j++ {
			fmt.Fprintf(&b, "% .4g ", m.At(i, j))
		}
		if maxC < m.cols {
			b.WriteString("...")
		}
		b.WriteByte('\n')
	}
	if maxR < m.rows {
		b.WriteString("  ...\n")
	}
	b.WriteString("]")
	return b.String()
}
