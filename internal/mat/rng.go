package mat

import "math"

// RNG is a small deterministic PRNG (splitmix64 core with a Box-Muller
// normal generator). Every stochastic component in the repository draws
// from an explicitly seeded RNG so runs are reproducible; nothing touches
// the global math/rand state.
type RNG struct {
	state    uint64
	hasSpare bool
	spare    float64
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit value (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mat: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// RandN returns a rows×cols matrix with iid N(0, sigma²) entries.
func RandN(rng *RNG, rows, cols int, sigma float64) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = rng.Norm() * sigma
	}
	return m
}

// RandUniform returns a rows×cols matrix with iid U[lo, hi) entries.
func RandUniform(rng *RNG, rows, cols int, lo, hi float64) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = lo + (hi-lo)*rng.Float64()
	}
	return m
}

// RandLowRank returns an m×n matrix of approximate rank r with noise:
// B*Cᵀ + eps*N where B is m×r, C is n×r. Used by tests and rank analyses.
func RandLowRank(rng *RNG, m, n, r int, eps float64) *Dense {
	b := RandN(rng, m, r, 1)
	c := RandN(rng, n, r, 1)
	out := MulTB(b, c)
	if eps > 0 {
		out.AddScaled(RandN(rng, m, n, 1), eps)
	}
	return out
}

// RandSPD returns an n×n symmetric positive-definite matrix M = BBᵀ + d*I.
func RandSPD(rng *RNG, n int, d float64) *Dense {
	b := RandN(rng, n, n, 1)
	return Gram(b).AddDiag(d)
}
