package mat

import (
	"testing"
	"testing/quick"
)

func TestQRPivotReconstruction(t *testing.T) {
	rng := NewRNG(31)
	for _, dims := range [][2]int{{5, 5}, {10, 6}, {6, 10}, {30, 30}} {
		a := RandN(rng, dims[0], dims[1], 1)
		f := FactorQRPivot(a)
		q, r, perm := f.Q(), f.R(), f.Perm()
		// Rebuild A: columns of Q*R are the permuted columns of A.
		qr := Mul(q, r)
		back := NewDense(a.rows, a.cols)
		for pos, orig := range perm {
			for i := 0; i < a.rows; i++ {
				back.Set(i, orig, qr.At(i, pos))
			}
		}
		if d := MaxAbsDiff(back, a); d > 1e-9 {
			t.Fatalf("dims %v: QR reconstruction error %g", dims, d)
		}
		// Q orthonormal.
		if d := MaxAbsDiff(MulTA(q, q), Identity(q.Cols())); d > 1e-9 {
			t.Fatalf("dims %v: QᵀQ differs from I by %g", dims, d)
		}
	}
}

func TestQRPivotDiagonalDecreasing(t *testing.T) {
	rng := NewRNG(32)
	a := RandN(rng, 20, 20, 1)
	f := FactorQRPivot(a)
	r := f.R()
	prev := r.At(0, 0)
	for i := 1; i < 20; i++ {
		cur := r.At(i, i)
		if abs(cur) > abs(prev)+1e-9 {
			t.Fatalf("pivoted QR diagonal not decreasing: |r[%d,%d]|=%g > |r[%d,%d]|=%g",
				i, i, abs(cur), i-1, i-1, abs(prev))
		}
		prev = cur
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestInterpolativeDecompExactLowRank(t *testing.T) {
	rng := NewRNG(33)
	// Exactly rank-4 matrix: a rank-4 ID must reconstruct it exactly.
	q := RandLowRank(rng, 24, 16, 4, 0)
	p, s := InterpolativeDecomp(q, 4)
	if len(s) != 4 {
		t.Fatalf("len(S) = %d; want 4", len(s))
	}
	rec := Mul(p, q.SelectRows(s))
	if d := MaxAbsDiff(rec, q); d > 1e-8 {
		t.Fatalf("rank-4 ID of rank-4 matrix: error %g", d)
	}
}

func TestInterpolativeDecompIdentityRows(t *testing.T) {
	rng := NewRNG(34)
	q := RandN(rng, 12, 12, 1)
	r := 5
	p, s := InterpolativeDecomp(q, r)
	// The selected rows must be reproduced exactly: P[s[k], :] = e_k.
	for k, row := range s {
		for j := 0; j < r; j++ {
			want := 0.0
			if j == k {
				want = 1
			}
			if abs(p.At(row, j)-want) > 1e-12 {
				t.Fatalf("P[%d,%d] = %g; want %g", row, j, p.At(row, j), want)
			}
		}
	}
}

func TestInterpolativeDecompErrorDecreasesWithRank(t *testing.T) {
	rng := NewRNG(35)
	q := RandLowRank(rng, 40, 40, 10, 0.01)
	var prev float64 = 1e18
	for _, r := range []int{2, 5, 10, 20} {
		p, s := InterpolativeDecomp(q, r)
		err := Sub(Mul(p, q.SelectRows(s)), q).FrobNorm()
		if err > prev*1.5 { // allow small non-monotonic noise
			t.Fatalf("ID error grew from %g to %g at rank %d", prev, err, r)
		}
		prev = err
	}
	// At rank ≥ true rank the residual should be near the noise floor.
	p, s := InterpolativeDecomp(q, 20)
	err := Sub(Mul(p, q.SelectRows(s)), q).FrobNorm() / q.FrobNorm()
	if err > 0.05 {
		t.Fatalf("relative ID error %g too large at rank 20", err)
	}
}

func TestInterpolativeDecompRankClamp(t *testing.T) {
	rng := NewRNG(36)
	q := RandN(rng, 6, 4, 1)
	p, s := InterpolativeDecomp(q, 100) // clamped to 4
	if len(s) != 4 || p.Cols() != 4 {
		t.Fatalf("clamped rank: len(S)=%d P cols=%d; want 4, 4", len(s), p.Cols())
	}
}

func TestInterpolativeDecompZeroRank(t *testing.T) {
	q := NewDense(5, 5)
	p, s := InterpolativeDecomp(q, 0)
	if len(s) != 0 || p.Cols() != 0 {
		t.Fatalf("zero-rank ID: len(S)=%d P cols=%d", len(s), p.Cols())
	}
}

// Property: an ID on an exactly rank-r matrix has reconstruction error near
// machine precision, and the selected indices are unique and in range.
func TestInterpolativeDecompProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*57 + 5)
		m := 5 + rng.Intn(20)
		n := 5 + rng.Intn(20)
		r := 1 + rng.Intn(min(m, n)-1)
		q := RandLowRank(rng, m, n, r, 0)
		p, s := InterpolativeDecomp(q, r)
		if len(s) != r {
			return false
		}
		seen := map[int]bool{}
		for _, i := range s {
			if i < 0 || i >= m || seen[i] {
				return false
			}
			seen[i] = true
		}
		rel := Sub(Mul(p, q.SelectRows(s)), q).FrobNorm() / (q.FrobNorm() + 1e-300)
		return rel < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInterpolativeDecomp256r32(b *testing.B) {
	rng := NewRNG(1)
	q := RandLowRank(rng, 256, 256, 32, 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InterpolativeDecomp(q, 32)
	}
}
