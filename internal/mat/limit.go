package mat

import "sync/atomic"

// Limiter bounds the extra worker goroutines mat's parallel kernels may
// spawn. The scheduler (internal/sched) installs its process-wide token
// pool here so nested parallelism — layer-parallel preconditioner stages
// each calling the parallel GEMM — never oversubscribes the machine: a
// kernel that wants w workers keeps the calling goroutine for free and asks
// the limiter for up to w−1 extras, running with whatever it is granted.
//
// TryAcquire must be non-blocking (a kernel denied extras degrades to fewer
// workers, it never waits), and Release must return exactly the granted
// count. Results of the parallel kernels are independent of the worker
// count, so limiting never changes numerics — only the parallelism.
type Limiter interface {
	// TryAcquire grants up to n tokens without blocking, returning the
	// number granted (possibly 0).
	TryAcquire(n int) int
	// Release returns n previously granted tokens.
	Release(n int)
}

// parallelLimiter holds the installed Limiter; nil means unlimited (the
// default, preserving the historical GOMAXPROCS-wide behavior).
var parallelLimiter atomic.Pointer[limiterBox]

type limiterBox struct{ l Limiter }

// SetParallelLimiter installs (or, with nil, removes) the process-wide
// limiter consulted by the parallel kernels. Safe to call concurrently
// with running kernels: in-flight acquisitions release against the limiter
// they were granted by.
func SetParallelLimiter(l Limiter) {
	if l == nil {
		parallelLimiter.Store(nil)
		return
	}
	parallelLimiter.Store(&limiterBox{l: l})
}

func noopRelease() {}

// acquireWorkers resolves how many workers (including the caller) a
// parallel kernel may actually use, given that it wants `want`: the caller
// is always granted, and want−1 extras are requested from the installed
// limiter. The returned release func must be called when the parallel
// region ends.
func acquireWorkers(want int) (int, func()) {
	if want <= 1 {
		return 1, noopRelease
	}
	box := parallelLimiter.Load()
	if box == nil {
		return want, noopRelease
	}
	granted := box.l.TryAcquire(want - 1)
	if granted <= 0 {
		return 1, noopRelease
	}
	return 1 + granted, func() { box.l.Release(granted) }
}
