package mat

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstruction(t *testing.T) {
	rng := NewRNG(11)
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := RandSPD(rng, n, 1)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(MulTB(l, l), a); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: L*Lᵀ differs from A by %g", n, d)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

func TestSolveCholesky(t *testing.T) {
	rng := NewRNG(12)
	a := RandSPD(rng, 30, 2)
	b := RandN(rng, 30, 4, 1)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := SolveCholesky(l, b)
	if d := MaxAbsDiff(Mul(a, x), b); d > 1e-8 {
		t.Fatalf("A*x differs from b by %g", d)
	}
}

func TestInvSPD(t *testing.T) {
	rng := NewRNG(13)
	a := RandSPD(rng, 25, 1.5)
	inv, err := InvSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(Mul(a, inv), Identity(25)); d > 1e-8 {
		t.Fatalf("A*A⁻¹ differs from I by %g", d)
	}
}

func TestInvSPDDampedStabilizes(t *testing.T) {
	// Rank-deficient PSD matrix: damping must succeed anyway.
	rng := NewRNG(14)
	b := RandN(rng, 10, 3, 1)
	a := Gram(b) // rank 3, size 10 — singular
	inv := InvSPDDamped(a, 1e-4)
	// (A + damp I) * inv ≈ I for the effective damping used; at minimum the
	// result must be finite and symmetric-ish.
	if inv.MaxAbs() == 0 || inv.MaxAbs() > 1e12 {
		t.Fatalf("damped inverse has unreasonable magnitude %g", inv.MaxAbs())
	}
	if d := MaxAbsDiff(inv, inv.T()); d > 1e-6 {
		t.Fatalf("damped inverse asymmetric by %g", d)
	}
}

func TestLUSolve(t *testing.T) {
	rng := NewRNG(15)
	for _, n := range []int{1, 2, 7, 33} {
		a := RandN(rng, n, n, 1).AddDiag(3) // well-conditioned
		b := RandN(rng, n, 3, 1)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(Mul(a, x), b); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: residual %g", n, d)
		}
	}
}

func TestInvGeneral(t *testing.T) {
	rng := NewRNG(16)
	a := RandN(rng, 20, 20, 1).AddDiag(4)
	inv, err := Inv(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(Mul(inv, a), Identity(20)); d > 1e-9 {
		t.Fatalf("A⁻¹*A differs from I by %g", d)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); d < -6.0001 || d > -5.9999 {
		t.Fatalf("Det = %g; want -6", d)
	}
}

// Property: the Sherman-Morrison-Woodbury identity that underpins SNGD
// (Eq. 7): (α I + Uᵀ U)⁻¹ = (1/α)(I − Uᵀ (U Uᵀ + α I)⁻¹ U).
func TestSMWIdentityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*131 + 3)
		m, d := 2+rng.Intn(6), 3+rng.Intn(12)
		alpha := 0.1 + rng.Float64()
		u := RandN(rng, m, d, 1)
		// Direct: (Uᵀ U + α I)⁻¹, d×d.
		direct, err := InvSPD(GramT(u).AddDiag(alpha))
		if err != nil {
			return false
		}
		// SMW: (1/α)(I − Uᵀ (U Uᵀ + α I)⁻¹ U), with kernel m×m.
		kinv, err := InvSPD(Gram(u).AddDiag(alpha))
		if err != nil {
			return false
		}
		smw := Identity(d)
		smw.AddScaled(MulTA(u, Mul(kinv, u)), -1)
		smw.Scale(1 / alpha)
		return MaxAbsDiff(direct, smw) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky solve matches LU solve on SPD systems.
func TestCholeskyMatchesLUProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*17 + 29)
		n := 2 + rng.Intn(15)
		a := RandSPD(rng, n, 1)
		b := RandN(rng, n, 2, 1)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x1 := SolveCholesky(l, b)
		x2, err := Solve(a, b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(x1, x2) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
