package mat

import (
	"math"
	"testing"
)

// FuzzInterpolativeDecomp feeds arbitrary seeds/shapes through the ID and
// asserts the structural contract: valid unique indices and a finite
// reconstruction whose error never exceeds the trivial rank-0 bound.
func FuzzInterpolativeDecomp(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(8), uint8(3))
	f.Add(uint64(42), uint8(20), uint8(5), uint8(5))
	f.Add(uint64(7), uint8(3), uint8(17), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, mDim, nDim, rank uint8) {
		m := int(mDim%24) + 1
		n := int(nDim%24) + 1
		r := int(rank%uint8(m)) + 1
		rng := NewRNG(seed)
		q := RandN(rng, m, n, 1)
		p, s := InterpolativeDecomp(q, r)
		if len(s) > r || p.Cols() != len(s) {
			t.Fatalf("contract: |S|=%d cols=%d r=%d", len(s), p.Cols(), r)
		}
		seen := map[int]bool{}
		for _, i := range s {
			if i < 0 || i >= m || seen[i] {
				t.Fatalf("bad index set %v (m=%d)", s, m)
			}
			seen[i] = true
		}
		rec := Mul(p, q.SelectRows(s))
		for _, v := range rec.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite reconstruction")
			}
		}
	})
}

// FuzzCholeskySolve checks that whenever Cholesky succeeds, the solve it
// produces actually satisfies the system.
func FuzzCholeskySolve(f *testing.F) {
	f.Add(uint64(3), uint8(4), 1.0)
	f.Add(uint64(11), uint8(12), 0.1)
	f.Fuzz(func(t *testing.T, seed uint64, nDim uint8, dampRaw float64) {
		n := int(nDim%16) + 1
		damp := math.Abs(dampRaw)
		if math.IsNaN(damp) || math.IsInf(damp, 0) || damp > 1e6 {
			damp = 1
		}
		rng := NewRNG(seed)
		a := RandSPD(rng, n, damp+1e-6)
		b := RandN(rng, n, 2, 1)
		l, err := Cholesky(a)
		if err != nil {
			return // numerically indefinite inputs are allowed to fail
		}
		x := SolveCholesky(l, b)
		if d := MaxAbsDiff(Mul(a, x), b); d > 1e-6*float64(n)*(1+damp) {
			t.Fatalf("n=%d damp=%g: residual %g", n, damp, d)
		}
	})
}

// FuzzKernelIdentity stresses the Khatri-Rao kernel identity across
// arbitrary shapes — the structural heart of the SNGD formulation.
func FuzzKernelIdentity(f *testing.F) {
	f.Add(uint64(5), uint8(6), uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, seed uint64, mDim, da, dg uint8) {
		m := int(mDim%12) + 1
		a := RandN(NewRNG(seed), m, int(da%8)+1, 1)
		g := RandN(NewRNG(seed+1), m, int(dg%8)+1, 1)
		if d := MaxAbsDiff(KernelMatrix(a, g), Gram(KhatriRao(a, g))); d > 1e-9 {
			t.Fatalf("kernel identity violated by %g", d)
		}
	})
}
