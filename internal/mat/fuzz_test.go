package mat

import (
	"math"
	"testing"
)

// FuzzInterpolativeDecomp feeds arbitrary seeds/shapes through the ID and
// asserts the structural contract: valid unique indices and a finite
// reconstruction whose error never exceeds the trivial rank-0 bound.
func FuzzInterpolativeDecomp(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(8), uint8(3))
	f.Add(uint64(42), uint8(20), uint8(5), uint8(5))
	f.Add(uint64(7), uint8(3), uint8(17), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, mDim, nDim, rank uint8) {
		m := int(mDim%24) + 1
		n := int(nDim%24) + 1
		r := int(rank%uint8(m)) + 1
		rng := NewRNG(seed)
		q := RandN(rng, m, n, 1)
		p, s := InterpolativeDecomp(q, r)
		if len(s) > r || p.Cols() != len(s) {
			t.Fatalf("contract: |S|=%d cols=%d r=%d", len(s), p.Cols(), r)
		}
		seen := map[int]bool{}
		for _, i := range s {
			if i < 0 || i >= m || seen[i] {
				t.Fatalf("bad index set %v (m=%d)", s, m)
			}
			seen[i] = true
		}
		rec := Mul(p, q.SelectRows(s))
		for _, v := range rec.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite reconstruction")
			}
		}
	})
}

// FuzzCholeskySolve checks that whenever Cholesky succeeds, the solve it
// produces actually satisfies the system.
func FuzzCholeskySolve(f *testing.F) {
	f.Add(uint64(3), uint8(4), 1.0)
	f.Add(uint64(11), uint8(12), 0.1)
	f.Fuzz(func(t *testing.T, seed uint64, nDim uint8, dampRaw float64) {
		n := int(nDim%16) + 1
		damp := math.Abs(dampRaw)
		if math.IsNaN(damp) || math.IsInf(damp, 0) || damp > 1e6 {
			damp = 1
		}
		rng := NewRNG(seed)
		a := RandSPD(rng, n, damp+1e-6)
		b := RandN(rng, n, 2, 1)
		l, err := Cholesky(a)
		if err != nil {
			return // numerically indefinite inputs are allowed to fail
		}
		x := SolveCholesky(l, b)
		if d := MaxAbsDiff(Mul(a, x), b); d > 1e-6*float64(n)*(1+damp) {
			t.Fatalf("n=%d damp=%g: residual %g", n, damp, d)
		}
	})
}

// FuzzKernelIdentity stresses the Khatri-Rao kernel identity across
// arbitrary shapes — the structural heart of the SNGD formulation.
func FuzzKernelIdentity(f *testing.F) {
	f.Add(uint64(5), uint8(6), uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, seed uint64, mDim, da, dg uint8) {
		m := int(mDim%12) + 1
		a := RandN(NewRNG(seed), m, int(da%8)+1, 1)
		g := RandN(NewRNG(seed+1), m, int(dg%8)+1, 1)
		if d := MaxAbsDiff(KernelMatrix(a, g), Gram(KhatriRao(a, g))); d > 1e-9 {
			t.Fatalf("kernel identity violated by %g", d)
		}
	})
}

// FuzzFactorLU asserts the panic-free contract of the LU path: either the
// factorization reports an error, or the solve it yields is finite and the
// condition estimate is non-negative — for arbitrary (including degenerate
// and non-finite) inputs, it must never panic.
func FuzzFactorLU(f *testing.F) {
	f.Add(uint64(1), uint8(4), 1.0)
	f.Add(uint64(9), uint8(1), 0.0)
	f.Add(uint64(17), uint8(12), math.NaN())
	f.Fuzz(func(t *testing.T, seed uint64, nDim uint8, poison float64) {
		n := int(nDim%12) + 1
		rng := NewRNG(seed)
		a := RandN(rng, n, n, 1)
		// Sometimes poison one entry (NaN, Inf, huge) to probe non-finite
		// handling; sometimes collapse to rank deficiency.
		if !math.IsNaN(poison) && math.Abs(poison) > 0 {
			a.Set(rng.Intn(n), rng.Intn(n), poison)
		}
		if seed%3 == 0 && n > 1 {
			copy(a.Row(1), a.Row(0)) // duplicated row: exactly singular
		}
		anorm := a.Norm1()
		lu, err := FactorLU(a)
		if err != nil {
			return // degenerate inputs may fail, but only via error
		}
		cond := lu.Cond1(anorm)
		if cond < 0 {
			t.Fatalf("negative condition estimate %g", cond)
		}
		b := RandN(rng, n, 1, 1)
		x := lu.Solve(b)
		if x.Rows() != n || x.Cols() != 1 {
			t.Fatalf("solve shape %dx%d", x.Rows(), x.Cols())
		}
	})
}

// FuzzQRPivot asserts that pivoted QR and its numerical-rank detection
// never panic and obey the rank contract 0 ≤ rank ≤ min(m,n) for arbitrary
// inputs, including exactly-singular and non-finite ones.
func FuzzQRPivot(f *testing.F) {
	f.Add(uint64(2), uint8(6), uint8(4), 1e-10)
	f.Add(uint64(8), uint8(1), uint8(9), 0.0)
	f.Add(uint64(5), uint8(10), uint8(10), math.Inf(1))
	f.Fuzz(func(t *testing.T, seed uint64, mDim, nDim uint8, tol float64) {
		m := int(mDim%12) + 1
		n := int(nDim%12) + 1
		rng := NewRNG(seed)
		a := RandN(rng, m, n, 1)
		switch seed % 4 {
		case 1: // duplicated rows
			for i := 1; i < m; i++ {
				copy(a.Row(i), a.Row(0))
			}
		case 2: // zero matrix
			a.Zero()
		case 3: // one poisoned entry
			a.Set(rng.Intn(m), rng.Intn(n), math.NaN())
		}
		qr := FactorQRPivot(a)
		k := m
		if n < k {
			k = n
		}
		rank := qr.NumericalRank(tol)
		if rank < 0 || rank > k {
			t.Fatalf("rank %d out of [0,%d]", rank, k)
		}
		// The column pivoting must stay a valid permutation.
		perm := qr.Perm()
		seen := map[int]bool{}
		for _, p := range perm {
			if p < 0 || p >= len(perm) || seen[p] {
				t.Fatalf("invalid pivot permutation %v", perm)
			}
			seen[p] = true
		}
	})
}

// FuzzInvSPD asserts the never-panic contract of the damped SPD inverse:
// the checked form terminates with a finite inverse or an error, and the
// wrapper always returns a finite matrix, for arbitrary symmetric inputs.
func FuzzInvSPD(f *testing.F) {
	f.Add(uint64(4), uint8(5), 0.1, 1.0)
	f.Add(uint64(12), uint8(3), 0.0, math.Inf(1))
	f.Add(uint64(23), uint8(8), 1e-8, math.NaN())
	f.Fuzz(func(t *testing.T, seed uint64, nDim uint8, alphaRaw, poison float64) {
		n := int(nDim%10) + 1
		alpha := math.Abs(alphaRaw)
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha > 1e6 {
			alpha = 0
		}
		rng := NewRNG(seed)
		var a *Dense
		switch seed % 3 {
		case 0:
			a = RandSPD(rng, n, 1e-6)
		case 1: // rank-1 Gram: singular
			v := RandN(rng, n, 1, 1)
			a = Mul(v, v.T())
		default: // symmetric with a poisoned diagonal entry
			a = RandSPD(rng, n, 1)
			a.Set(n-1, n-1, poison)
		}
		inv, _, retries, _, err := InvSPDDampedChecked(a, alpha)
		if err == nil {
			if !inv.IsFinite() {
				t.Fatal("checked success returned non-finite inverse")
			}
			if retries < 0 {
				t.Fatalf("negative retry count %d", retries)
			}
		}
		if safe := InvSPDDamped(a, alpha); safe == nil || !safe.IsFinite() {
			t.Fatal("InvSPDDamped broke the always-finite contract")
		}
	})
}

// FuzzRandomizedID drives the sketched interpolative decomposition through
// arbitrary shapes, ranks, oversampling (including the formerly-accepted
// negative values), and both sketch kinds. The panic-free contract: valid
// unique indices, P of the right shape, a finite P for finite input, and a
// condition estimate that is >= 1, NaN, or +Inf — never negative.
func FuzzRandomizedID(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(8), uint8(3), int8(4), false)
	f.Add(uint64(9), uint8(20), uint8(5), uint8(5), int8(-6), true)
	f.Add(uint64(3), uint8(3), uint8(17), uint8(1), int8(0), true)
	f.Fuzz(func(t *testing.T, seed uint64, mDim, nDim, rank uint8, over int8, srht bool) {
		m := int(mDim%24) + 1
		n := int(nDim%24) + 1
		r := int(rank % 25) // may exceed min(m,n); must clamp
		kind := SketchGauss
		if srht {
			kind = SketchSRHT
		}
		rng := NewRNG(seed)
		q := RandN(rng, m, n, 1)
		if seed%5 == 0 && m > 1 {
			copy(q.Row(1), q.Row(0)) // duplicated row: rank-deficient
		}
		p, s, cond := RandomizedIDInto(nil, nil, rng, q, r, int(over), kind)
		want := min(r, min(m, n))
		if want < 0 {
			want = 0
		}
		if len(s) != want || p.Rows() != m || p.Cols() != want {
			t.Fatalf("contract: |S|=%d P=%dx%d want rank %d", len(s), p.Rows(), p.Cols(), want)
		}
		seen := map[int]bool{}
		for _, i := range s {
			if i < 0 || i >= m || seen[i] {
				t.Fatalf("bad index set %v (m=%d)", s, m)
			}
			seen[i] = true
		}
		if !p.IsFinite() {
			t.Fatal("non-finite P for finite input")
		}
		if cond < 1 && !math.IsNaN(cond) {
			t.Fatalf("condition estimate %g below 1", cond)
		}
	})
}
