package mat

import (
	"testing"
	"testing/quick"
)

// mulNaive is the reference O(n³) triple loop used to validate the blocked
// parallel kernel.
func mulNaive(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMulSmallExact(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 1e-14) {
		t.Fatalf("Mul = %v; want %v", got, want)
	}
}

func TestMulMatchesNaive(t *testing.T) {
	rng := NewRNG(42)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 9, 23}, {64, 64, 64}, {100, 3, 50}, {130, 70, 90}} {
		a := RandN(rng, dims[0], dims[1], 1)
		b := RandN(rng, dims[1], dims[2], 1)
		if d := MaxAbsDiff(Mul(a, b), mulNaive(a, b)); d > 1e-10 {
			t.Fatalf("dims %v: Mul differs from naive by %g", dims, d)
		}
	}
}

func TestMulParallelLarge(t *testing.T) {
	// Above parallelThreshold; checks the multi-goroutine path agrees.
	rng := NewRNG(7)
	a := RandN(rng, 150, 120, 1)
	b := RandN(rng, 120, 140, 1)
	if d := MaxAbsDiff(Mul(a, b), mulNaive(a, b)); d > 1e-9 {
		t.Fatalf("parallel Mul differs from naive by %g", d)
	}
}

func TestMulTA(t *testing.T) {
	rng := NewRNG(3)
	a := RandN(rng, 13, 8, 1)
	b := RandN(rng, 13, 11, 1)
	if d := MaxAbsDiff(MulTA(a, b), Mul(a.T(), b)); d > 1e-12 {
		t.Fatalf("MulTA differs from explicit transpose by %g", d)
	}
}

func TestMulTB(t *testing.T) {
	rng := NewRNG(4)
	a := RandN(rng, 9, 14, 1)
	b := RandN(rng, 12, 14, 1)
	if d := MaxAbsDiff(MulTB(a, b), Mul(a, b.T())); d > 1e-12 {
		t.Fatalf("MulTB differs from explicit transpose by %g", d)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := NewRNG(5)
	a := RandN(rng, 20, 20, 1)
	if !Equal(Mul(a, Identity(20)), a, 1e-13) {
		t.Fatal("A*I != A")
	}
	if !Equal(Mul(Identity(20), a), a, 1e-13) {
		t.Fatal("I*A != A")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := MulVec(a, []float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v; want [6 15]", got)
	}
	gotT := MulVecT(a, []float64{1, 1})
	if gotT[0] != 5 || gotT[1] != 7 || gotT[2] != 9 {
		t.Fatalf("MulVecT = %v; want [5 7 9]", gotT)
	}
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 35 {
		t.Fatalf("Dot = %g; want 35", got)
	}
}

// Property: associativity (A*B)*C ≈ A*(B*C).
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*77 + 13)
		p, q, r, s := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := RandN(rng, p, q, 1)
		b := RandN(rng, q, r, 1)
		c := RandN(rng, r, s, 1)
		return MaxAbsDiff(Mul(Mul(a, b), c), Mul(a, Mul(b, c))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)ᵀ = Bᵀ*Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*31 + 7)
		p, q, r := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := RandN(rng, p, q, 1)
		b := RandN(rng, q, r, 1)
		return MaxAbsDiff(Mul(a, b).T(), Mul(b.T(), a.T())) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
