package mat

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numerics"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// ErrSingular is returned when an LU factorization encounters an exactly
// zero pivot.
var ErrSingular = errors.New("mat: matrix is singular")

// ErrIllConditioned is returned when a solve could not be stabilized
// within the bounded damping-escalation budget — the matrix is numerically
// singular (or poisoned by non-finite entries) beyond what Levenberg-
// Marquardt escalation can repair.
var ErrIllConditioned = errors.New("mat: matrix is numerically ill-conditioned beyond repair")

// Cholesky computes the lower-triangular L with a = L*Lᵀ for a symmetric
// positive-definite matrix. The strictly upper part of the result is zero.
func Cholesky(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		panic("mat: Cholesky needs a square matrix")
	}
	n := a.rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var d float64
		lrowJ := l.Row(j)
		d = a.At(j, j) - Dot(lrowJ[:j], lrowJ[:j])
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d = %g)", ErrNotSPD, j, d)
		}
		ljj := math.Sqrt(d)
		lrowJ[j] = ljj
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			lrowI := l.Row(i)
			lrowI[j] = (a.At(i, j) - Dot(lrowI[:j], lrowJ[:j])) * inv
		}
	}
	return l, nil
}

// SolveCholesky solves a*x = b given the Cholesky factor L of a, for each
// column of b. b is not modified.
func SolveCholesky(l, b *Dense) *Dense {
	n := l.rows
	if b.rows != n {
		panic("mat: SolveCholesky dimension mismatch")
	}
	x := b.Clone()
	// Forward substitution L*y = b, column by column over x in place.
	for i := 0; i < n; i++ {
		li := l.Row(i)
		xi := x.Row(i)
		for k := 0; k < i; k++ {
			if li[k] != 0 {
				axpy(xi, x.Row(k), -li[k])
			}
		}
		inv := 1 / li[i]
		for c := range xi {
			xi[c] *= inv
		}
	}
	// Back substitution Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		xi := x.Row(i)
		for k := i + 1; k < n; k++ {
			if lki := l.At(k, i); lki != 0 {
				axpy(xi, x.Row(k), -lki)
			}
		}
		inv := 1 / l.At(i, i)
		for c := range xi {
			xi[c] *= inv
		}
	}
	return x
}

// InvSPD inverts a symmetric positive-definite matrix via Cholesky.
func InvSPD(a *Dense) (*Dense, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, Identity(a.rows)), nil
}

// maxDampedAttempts bounds the Levenberg-Marquardt damping escalation of
// the checked damped solves. 40 decades of growth exhaust any finite
// input's dynamic range, so hitting the bound means the matrix is poisoned
// (non-finite) rather than merely stiff.
const maxDampedAttempts = 40

// InvSPDDampedChecked inverts (a + alpha*I) via Cholesky with bounded
// Levenberg-Marquardt damping escalation: on an indefinite factorization
// the damping grows by decades until the factorization succeeds or the
// attempt budget is exhausted. It returns the inverse, the damping
// actually used, the number of escalation retries, and a condition
// estimate of the matrix that was finally inverted. The error (wrapping
// ErrIllConditioned) is non-nil only when no damping stabilized the solve;
// no input can make it panic.
func InvSPDDampedChecked(a *Dense, alpha float64) (inv *Dense, usedDamp float64, retries int, cond float64, err error) {
	damp := alpha
	for k := 0; k < maxDampedAttempts; k++ {
		c := a.Clone().AddDiag(damp)
		l, cerr := Cholesky(c)
		if cerr == nil {
			cond = CondEstCholesky(l, c.Norm1())
			numerics.ObserveCondition("mat.invspd", cond)
			return SolveCholesky(l, Identity(a.rows)), damp, k, cond, nil
		}
		if damp == 0 {
			damp = 1e-8
		} else {
			damp *= 10
		}
	}
	return nil, damp, maxDampedAttempts, math.Inf(1),
		fmt.Errorf("%w (damped SPD inverse, %d attempts, damping reached %g)",
			ErrIllConditioned, maxDampedAttempts, damp)
}

// InvSPDDamped inverts (a + alpha*I) via Cholesky with bounded damping
// escalation — the standard behaviour second-order optimizers need from a
// damped solve. When even maximal damping cannot stabilize the solve (the
// input is non-finite), it degrades to the diagonal (Jacobi) pseudo-inverse
// and records the fallback, so the caller always receives a finite,
// usable matrix: this function never panics. Callers that need to steer
// their own degradation ladder use InvSPDDampedChecked instead.
func InvSPDDamped(a *Dense, alpha float64) *Dense {
	inv, _, retries, _, err := InvSPDDampedChecked(a, alpha)
	numerics.AddRetries("mat.invspd", retries)
	if err == nil {
		return inv
	}
	numerics.RecordFallback("mat.invspd", numerics.RungDiagonal, err.Error())
	return DiagInvDamped(a, alpha)
}

// DiagInvDamped returns the diagonal (Jacobi) pseudo-inverse of
// (a + alpha*I): off-diagonals are dropped and each diagonal entry is
// inverted with a floor so the result is always finite. This is the
// last-but-one rung of the degradation ladder — a crude but safe
// preconditioner when the full matrix cannot be inverted.
func DiagInvDamped(a *Dense, alpha float64) *Dense {
	n := a.rows
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		d := math.Abs(a.At(i, i)) + alpha
		if math.IsNaN(d) || math.IsInf(d, 0) || d <= 0 {
			d = 1
		}
		out.Set(i, i, 1/d)
	}
	return out
}

// LU holds a row-pivoted LU factorization: P*a = L*U packed into lu.
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a with partial pivoting.
func FactorLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		panic("mat: FactorLU needs a square matrix")
	}
	f, err := factorLUInPlace(a.Clone(), make([]int, a.rows))
	if err != nil {
		return nil, err
	}
	return &f, nil
}

// factorLUInPlace factors lu destructively using the caller's pivot
// storage, returning the factorization by value so the pooled inversion
// path allocates nothing.
func factorLUInPlace(lu *Dense, piv []int) (LU, error) {
	n := lu.rows
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				p, maxAbs = i, v
			}
		}
		if maxAbs == 0 {
			return LU{}, fmt.Errorf("%w (column %d)", ErrSingular, k)
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		rowK := lu.Row(k)
		for i := k + 1; i < n; i++ {
			rowI := lu.Row(i)
			f := rowI[k] / pivVal
			rowI[k] = f
			if f != 0 {
				axpy(rowI[k+1:], rowK[k+1:], -f)
			}
		}
	}
	return LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves a*x = b for each column of b.
func (f *LU) Solve(b *Dense) *Dense {
	n := f.lu.rows
	if b.rows != n {
		panic("mat: LU.Solve dimension mismatch")
	}
	x := NewDense(n, b.cols)
	for i, p := range f.piv {
		copy(x.Row(i), b.Row(p))
	}
	f.solveInPlace(x)
	return x
}

// solveInPlace runs the forward/backward substitution on x, which must
// already hold the row-permuted right-hand side.
func (f *LU) solveInPlace(x *Dense) {
	n := f.lu.rows
	// Forward: L*y = P*b (unit lower).
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		xi := x.Row(i)
		for k := 0; k < i; k++ {
			if ri[k] != 0 {
				axpy(xi, x.Row(k), -ri[k])
			}
		}
	}
	// Backward: U*x = y.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		xi := x.Row(i)
		for k := i + 1; k < n; k++ {
			if ri[k] != 0 {
				axpy(xi, x.Row(k), -ri[k])
			}
		}
		inv := 1 / ri[i]
		for c := range xi {
			xi[c] *= inv
		}
	}
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inv inverts a general square matrix via LU.
func Inv(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.rows)), nil
}

// InvInto sets dst = a⁻¹ via LU with every intermediate recycled through
// the pool — the allocation-free form of Inv. dst must be square with a's
// dimensions and must not alias a; it is fully overwritten (and left
// unspecified when an error is returned).
func InvInto(dst, a *Dense) error {
	if a.rows != a.cols {
		panic("mat: InvInto needs a square matrix")
	}
	if dst.rows != a.rows || dst.cols != a.cols {
		panic("mat: InvInto destination dimension mismatch")
	}
	checkNoAlias("InvInto", dst, a)
	n := a.rows
	lu := getDenseRaw(n, n)
	lu.CopyFrom(a)
	piv := getInts(n)
	f, err := factorLUInPlace(lu, piv)
	if err != nil {
		putInts(piv)
		PutDense(lu)
		return err
	}
	// dst starts as the row-permuted identity (Solve's copy step with
	// b = I), then the substitution runs in place.
	dst.Zero()
	for i, p := range f.piv {
		dst.data[i*n+p] = 1
	}
	f.solveInPlace(dst)
	putInts(piv)
	PutDense(lu)
	return nil
}

// InvCondInto is InvInto plus numerical health: it also computes the
// Hager 1-norm condition estimate of a from the LU factorization (a few
// O(n²) solves) before running the substitution, records it on the
// numerics monitor, and reports it to the caller so degradation ladders
// can treat a technically-successful but hopelessly ill-conditioned
// factorization as a failure. On error, cond is +Inf and dst is
// unspecified.
func InvCondInto(dst, a *Dense) (cond float64, err error) {
	if a.rows != a.cols {
		panic("mat: InvCondInto needs a square matrix")
	}
	if dst.rows != a.rows || dst.cols != a.cols {
		panic("mat: InvCondInto destination dimension mismatch")
	}
	checkNoAlias("InvCondInto", dst, a)
	anorm := a.Norm1()
	n := a.rows
	lu := getDenseRaw(n, n)
	lu.CopyFrom(a)
	piv := getInts(n)
	f, err := factorLUInPlace(lu, piv)
	if err != nil {
		putInts(piv)
		PutDense(lu)
		return math.Inf(1), err
	}
	cond = f.Cond1(anorm)
	numerics.ObserveCondition("mat.inv", cond)
	dst.Zero()
	for i, p := range f.piv {
		dst.data[i*n+p] = 1
	}
	f.solveInPlace(dst)
	putInts(piv)
	PutDense(lu)
	return cond, nil
}

// Solve solves a*x = b via LU for a general square a.
func Solve(a, b *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
