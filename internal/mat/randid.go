package mat

// RandomizedID computes a rank-r row interpolative decomposition of q
// using a Gaussian sketch (Biagioni & Beylkin, "Randomized interpolative
// decomposition of separated representations" — the paper's reference
// [33]): instead of pivoting on the full n columns of qᵀ, the m×n matrix
// is first compressed to m×(r+oversample) with a random projection, and
// the pivoted QR runs on the sketch. For m×m Gram matrices this reduces
// the ID cost from O(m²r) to O(m·r²) plus one sketch GEMM, at a small
// accuracy cost controlled by the oversampling parameter.
//
// It returns P (m×r) and row indices S with q ≈ P·q[S,:], the same
// contract as InterpolativeDecomp.
func RandomizedID(rng *RNG, q *Dense, r, oversample int) (p *Dense, s []int) {
	m, n := q.Dims()
	r = min(r, min(m, n))
	if r <= 0 {
		return NewDense(m, 0), nil
	}
	k := r + oversample
	if k > n {
		k = n
	}
	// Sketch the column space of qᵀ: Y = q · Ω with Ω ∈ R^{n×k}. Row
	// selection on q is column selection on qᵀ; sketching q's columns keeps
	// the row geometry needed to pick representative rows.
	omega := RandN(rng, n, k, 1)
	y := Mul(q, omega) // m×k: compressed rows of q
	// Pivoted QR on yᵀ ranks the rows of q by their sketched leverage.
	f := FactorQRPivot(y.T())
	perm := f.Perm()
	s = append([]int(nil), perm[:r]...)
	// Interpolation coefficients against the selected rows are computed on
	// the sketch: solve y[S,:]ᵀ · T ≈ yᵀ via the QR factors, giving
	// q ≈ Tᵀ q[S,:] in the sketched geometry.
	rm := f.R()
	t := NewDense(r, m-r)
	for j := 0; j < m-r; j++ {
		col := make([]float64, r)
		for i := 0; i < r; i++ {
			col[i] = rm.At(i, r+j)
		}
		for i := r - 1; i >= 0; i-- {
			sum := col[i]
			for kk := i + 1; kk < r; kk++ {
				sum -= rm.At(i, kk) * t.At(kk, j)
			}
			d := rm.At(i, i)
			if d == 0 {
				t.Set(i, j, 0)
				continue
			}
			t.Set(i, j, sum/d)
		}
	}
	p = NewDense(m, r)
	for kk := 0; kk < r; kk++ {
		p.Set(perm[kk], kk, 1)
	}
	for j := 0; j < m-r; j++ {
		dst := p.Row(perm[r+j])
		for kk := 0; kk < r; kk++ {
			dst[kk] = t.At(kk, j)
		}
	}
	return p, s
}
