package mat

import (
	"math"
	"math/bits"
)

// SketchKind selects the random projection used by the randomized
// interpolative decomposition.
type SketchKind int

const (
	// SketchGauss compresses with a dense Gaussian projection: one
	// m×n · n×k GEMM, O(mnk). The projection is oblivious and the
	// best-understood choice (Biagioni & Beylkin, reference [33]).
	SketchGauss SketchKind = iota
	// SketchSRHT compresses with a subsampled randomized Hadamard
	// transform: a ±1 sign-flip diagonal, a fast Walsh–Hadamard transform
	// per row, and a uniform subsample of k transformed columns —
	// O(mn log n) total, independent of the sketch width k.
	SketchSRHT
)

// nextPow2 returns the smallest power of two >= n, for n >= 1.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// fwht applies the (unnormalized) fast Walsh–Hadamard transform in place.
// len(x) must be a power of two; callers scale by 1/√len to make the
// transform orthonormal.
func fwht(x []float64) {
	n := len(x)
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				a, b := x[j], x[j+h]
				x[j], x[j+h] = a+b, a-b
			}
		}
	}
}

// srhtSketchInto fills y (m×k) with the SRHT sketch of q's columns:
// y = q·D·H·S/√npad, where D is a random ±1 diagonal, H the npad-point
// Walsh–Hadamard transform (npad = next power of two ≥ n, with zero
// padding), and S selects k of the npad transformed columns uniformly
// without replacement. Each row costs O(npad·log npad), so the sketch is
// O(m·n·log n) versus the Gaussian projection's O(m·n·k) GEMM.
func srhtSketchInto(y *Dense, rng *RNG, q *Dense, k int) {
	m, n := q.Dims()
	npad := nextPow2(n)
	signs := getFloatsRaw(n)
	for j := range signs {
		if rng.Uint64()&1 == 0 {
			signs[j] = 1
		} else {
			signs[j] = -1
		}
	}
	// Partial Fisher–Yates: the first k entries of idx become the sampled
	// transformed-column indices.
	idx := getInts(npad)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(npad-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	buf := getFloatsRaw(npad)
	scale := 1 / math.Sqrt(float64(npad))
	for i := 0; i < m; i++ {
		row := q.Row(i)
		for j := 0; j < n; j++ {
			buf[j] = signs[j] * row[j]
		}
		for j := n; j < npad; j++ {
			buf[j] = 0
		}
		fwht(buf)
		dst := y.Row(i)
		for l := 0; l < k; l++ {
			dst[l] = buf[idx[l]] * scale
		}
	}
	PutFloats(buf)
	putInts(idx)
	PutFloats(signs)
}

// RandomizedIDInto computes a rank-r row interpolative decomposition of q
// through a random sketch, without allocating in steady state: instead of
// pivoting on the full n columns of qᵀ, q is first compressed to
// m×(r+oversample) with the selected sketch, and the pivoted QR runs on
// the sketch. For m×m Gram matrices this reduces the ID cost from O(m²r)
// to O(m·k²) plus the sketch itself (one GEMM for SketchGauss, an
// O(mn log n) transform for SketchSRHT).
//
// p and s are persistent workspaces following the EnsureDense contract:
// pass the previous call's returns (nil on first use) and replace them
// with the returned values. On return p is m×r' and s has length r' with
// q ≈ p·q[s,:], where r' = min(r, m, n) clamped at 0; oversample is
// clamped below at 1.
//
// cond is a cheap condition estimate of the interpolation basis: the
// ratio |R₀₀|/|R_{r'-1,r'-1}| of the sketch's pivoted-QR diagonal
// (non-increasing under column pivoting, so cond ≥ 1). +Inf flags a
// numerically rank-deficient sketch; callers compare against
// numerics.CondLimit() before trusting the factorization.
func RandomizedIDInto(p *Dense, s []int, rng *RNG, q *Dense, r, oversample int, kind SketchKind) (pOut *Dense, sOut []int, cond float64) {
	m, n := q.Dims()
	r = min(r, min(m, n))
	if r <= 0 {
		p = EnsureDense(p, m, 0)
		return p, s[:0], 1
	}
	if oversample < 1 {
		oversample = 1
	}
	k := r + oversample
	if k > n {
		k = n
	}
	// Sketch the column space of qᵀ: row selection on q is column selection
	// on qᵀ, and sketching q's columns keeps the row geometry needed to
	// pick representative rows.
	y := getDenseRaw(m, k)
	if kind == SketchSRHT {
		srhtSketchInto(y, rng, q, k)
	} else {
		omega := getDenseRaw(n, k)
		od := omega.Data()
		for i := range od {
			od[i] = rng.Norm()
		}
		MulInto(y, q, omega)
		PutDense(omega)
	}
	// Pivoted QR on yᵀ ranks the rows of q by their sketched leverage. The
	// factorization takes ownership of yt; putQRPivot recycles it.
	yt := getDenseRaw(k, m)
	y.TInto(yt)
	PutDense(y)
	f := factorQRPivotInPlace(yt)
	perm := f.perm
	d0 := math.Abs(f.qr.At(0, 0))
	dr := math.Abs(f.qr.At(r-1, r-1))
	switch {
	case math.IsNaN(d0) || math.IsNaN(dr):
		cond = math.NaN()
	case d0 == 0 || dr == 0 || math.IsInf(d0, 0):
		cond = math.Inf(1)
	default:
		cond = d0 / dr
	}
	// Interpolation coefficients against the selected rows are computed on
	// the sketch: back-substitute R11·T = R12 reading the packed R factor
	// directly, giving q ≈ Tᵀ·q[S,:] in the sketched geometry.
	t := getDenseRaw(r, m-r)
	col := getFloatsRaw(r)
	for j := 0; j < m-r; j++ {
		for i := 0; i < r; i++ {
			col[i] = f.qr.At(i, r+j)
		}
		for i := r - 1; i >= 0; i-- {
			sum := col[i]
			for kk := i + 1; kk < r; kk++ {
				sum -= f.qr.At(i, kk) * t.At(kk, j)
			}
			d := f.qr.At(i, i)
			if d == 0 {
				t.Set(i, j, 0)
				continue
			}
			t.Set(i, j, sum/d)
		}
	}
	PutFloats(col)
	p = EnsureDense(p, m, r)
	p.Zero()
	for kk := 0; kk < r; kk++ {
		p.Set(perm[kk], kk, 1)
	}
	for j := 0; j < m-r; j++ {
		dst := p.Row(perm[r+j])
		for kk := 0; kk < r; kk++ {
			dst[kk] = t.At(kk, j)
		}
	}
	PutDense(t)
	if cap(s) >= r {
		s = s[:r]
	} else {
		s = make([]int, r)
	}
	copy(s, perm[:r])
	putQRPivot(f)
	return p, s, cond
}

// RandomizedID computes a rank-r row interpolative decomposition of q
// using a Gaussian sketch (Biagioni & Beylkin, "Randomized interpolative
// decomposition of separated representations" — the paper's reference
// [33]). It returns P (m×r) and row indices S with q ≈ P·q[S,:], the same
// contract as InterpolativeDecomp. Non-positive oversample is clamped to
// 1; r is clamped to [0, min(m,n)]. This is the allocating convenience
// wrapper around RandomizedIDInto.
func RandomizedID(rng *RNG, q *Dense, r, oversample int) (p *Dense, s []int) {
	p, s, _ = RandomizedIDInto(nil, nil, rng, q, r, oversample, SketchGauss)
	return p, s
}
