package mat

import "runtime"

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// Hadamard returns the element-wise product a ∘ b.
func Hadamard(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: Hadamard dimension mismatch")
	}
	out := NewDense(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// HadamardInto sets dst = a ∘ b without allocating.
func HadamardInto(dst, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols || dst.rows != a.rows || dst.cols != a.cols {
		panic("mat: HadamardInto dimension mismatch")
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
}

// Gram returns m*mᵀ (the m.rows × m.rows Gram matrix of the rows of m),
// computing only the lower triangle and mirroring it (SYRK): half the
// flops of a general product.
func Gram(m *Dense) *Dense {
	n := m.rows
	out := NewDense(n, n)
	parallelRows(n, func(i int) {
		ri := m.Row(i)
		orow := out.Row(i)
		for j := 0; j <= i; j++ {
			orow[j] = Dot(ri, m.Row(j))
		}
	})
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out.data[i*n+j] = out.data[j*n+i]
		}
	}
	return out
}

// GramT returns mᵀ*m (the m.cols × m.cols Gram matrix of the columns of m).
func GramT(m *Dense) *Dense { return MulTA(m, m) }

// parallelRows runs fn(i) for i in [0, n) across GOMAXPROCS goroutines
// with a static partition (deterministic assignment).
func parallelRows(n int, fn func(i int)) {
	nw := gomaxprocs()
	if nw > n {
		nw = n
	}
	if nw <= 1 || n < 32 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	done := make(chan struct{}, nw)
	for w := 0; w < nw; w++ {
		lo := w * n / nw
		hi := (w + 1) * n / nw
		go func(lo, hi int) {
			for i := lo; i < hi; i++ {
				fn(i)
			}
			done <- struct{}{}
		}(lo, hi)
	}
	for w := 0; w < nw; w++ {
		<-done
	}
}

// KernelMatrix returns the SNGD kernel K = (A Aᵀ) ∘ (G Gᵀ) of Eq. (7).
// A and G must both be m×d (per-sample inputs and output gradients); the
// result is m×m, symmetric positive semi-definite.
func KernelMatrix(a, g *Dense) *Dense {
	if a.rows != g.rows {
		panic("mat: KernelMatrix row mismatch")
	}
	return Hadamard(Gram(a), Gram(g))
}

// KhatriRao returns the row-wise Khatri-Rao product U = A ⊙ G of Eq. (5):
// row i of the result is the Kronecker product of row i of a with row i of
// g, so the output is m × (a.cols*g.cols). This is the per-sample Jacobian
// structure U = A ⊙ G.
func KhatriRao(a, g *Dense) *Dense {
	if a.rows != g.rows {
		panic("mat: KhatriRao row mismatch")
	}
	m, da, dg := a.rows, a.cols, g.cols
	out := NewDense(m, da*dg)
	for i := 0; i < m; i++ {
		ar, gr := a.Row(i), g.Row(i)
		orow := out.Row(i)
		for p, av := range ar {
			if av == 0 {
				continue
			}
			base := p * dg
			for q, gv := range gr {
				orow[base+q] = av * gv
			}
		}
	}
	return out
}

// Kron returns the Kronecker product a ⊗ b.
func Kron(a, b *Dense) *Dense {
	out := NewDense(a.rows*b.rows, a.cols*b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			av := a.At(i, j)
			if av == 0 {
				continue
			}
			for p := 0; p < b.rows; p++ {
				dst := out.Row(i*b.rows + p)[j*b.cols : (j+1)*b.cols]
				src := b.Row(p)
				for q := range src {
					dst[q] += av * src[q]
				}
			}
		}
	}
	return out
}

// KhatriRaoApply computes U*v for U = A ⊙ G without materializing U.
// v has length a.cols*g.cols; the result has length a.rows. Row i of U is
// vec(aᵢ gᵢᵀ)ᵀ, so (U v)ᵢ = aᵢᵀ V gᵢ where V is v reshaped a.cols×g.cols.
func KhatriRaoApply(a, g *Dense, v []float64) []float64 {
	if a.rows != g.rows || len(v) != a.cols*g.cols {
		panic("mat: KhatriRaoApply dimension mismatch")
	}
	dg := g.cols
	out := make([]float64, a.rows)
	tmp := make([]float64, dg)
	for i := 0; i < a.rows; i++ {
		ar, gr := a.Row(i), g.Row(i)
		for q := range tmp {
			tmp[q] = 0
		}
		for p, av := range ar {
			if av == 0 {
				continue
			}
			axpy(tmp, v[p*dg:(p+1)*dg], av)
		}
		out[i] = Dot(tmp, gr)
	}
	return out
}

// KhatriRaoApplyT computes Uᵀ*y for U = A ⊙ G without materializing U.
// y has length a.rows; the result has length a.cols*g.cols. Uᵀ y =
// vec(Σᵢ yᵢ aᵢ gᵢᵀ) = vec(Aᵀ diag(y) G).
func KhatriRaoApplyT(a, g *Dense, y []float64) []float64 {
	if a.rows != g.rows || len(y) != a.rows {
		panic("mat: KhatriRaoApplyT dimension mismatch")
	}
	da, dg := a.cols, g.cols
	out := make([]float64, da*dg)
	for i := 0; i < a.rows; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		ar, gr := a.Row(i), g.Row(i)
		for p, av := range ar {
			c := yi * av
			if c == 0 {
				continue
			}
			axpy(out[p*dg:(p+1)*dg], gr, c)
		}
	}
	return out
}

// RowNorms returns the Euclidean norm of each row of m.
func RowNorms(m *Dense) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Norm2(m.Row(i))
	}
	return out
}
