package mat

import "runtime"

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// Hadamard returns the element-wise product a ∘ b.
func Hadamard(a, b *Dense) *Dense {
	out := NewDense(a.rows, a.cols)
	HadamardInto(out, a, b)
	return out
}

// HadamardInto sets dst = a ∘ b without allocating. dst may alias a or b
// (the operation is element-wise).
func HadamardInto(dst, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols || dst.rows != a.rows || dst.cols != a.cols {
		panic("mat: HadamardInto dimension mismatch")
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
}

// SubInto sets dst = a − b without allocating. dst may alias a or b.
func SubInto(dst, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols || dst.rows != a.rows || dst.cols != a.cols {
		panic("mat: SubInto dimension mismatch")
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
}

// Gram returns m*mᵀ (the m.rows × m.rows Gram matrix of the rows of m),
// computing only the lower triangle and mirroring it (SYRK): half the
// flops of a general product.
func Gram(m *Dense) *Dense {
	out := NewDense(m.rows, m.rows)
	GramInto(out, m)
	return out
}

// GramInto sets dst = m*mᵀ without allocating. dst must be
// m.rows × m.rows and must not alias m.
func GramInto(dst, m *Dense) {
	n := m.rows
	if dst.rows != n || dst.cols != n {
		panic("mat: GramInto destination dimension mismatch")
	}
	checkNoAlias("GramInto", dst, m)
	if nw := gomaxprocs(); nw <= 1 || n < 32 {
		// Sequential: no closure, no goroutines, zero allocations.
		for i := 0; i < n; i++ {
			ri := m.Row(i)
			orow := dst.Row(i)
			for j := 0; j <= i; j++ {
				orow[j] = Dot(ri, m.Row(j))
			}
		}
	} else {
		parallelRows(n, func(i int) {
			ri := m.Row(i)
			orow := dst.Row(i)
			for j := 0; j <= i; j++ {
				orow[j] = Dot(ri, m.Row(j))
			}
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dst.data[i*n+j] = dst.data[j*n+i]
		}
	}
}

// GramT returns mᵀ*m (the m.cols × m.cols Gram matrix of the columns of m).
func GramT(m *Dense) *Dense { return MulTA(m, m) }

// GramTInto sets dst = mᵀ*m without allocating.
func GramTInto(dst, m *Dense) { MulTAInto(dst, m, m) }

// parallelRows runs fn(i) for i in [0, n) across GOMAXPROCS goroutines
// with a static partition (deterministic assignment). Workers beyond the
// calling goroutine are subject to the shared limiter, so row-parallel
// kernels nested under scheduler stages shrink rather than oversubscribe;
// the static partition makes the result identical for any worker count.
func parallelRows(n int, fn func(i int)) {
	nw := gomaxprocs()
	if nw > n {
		nw = n
	}
	if nw <= 1 || n < 32 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	nw, releaseWorkers := acquireWorkers(nw)
	defer releaseWorkers()
	if nw == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	done := make(chan struct{}, nw)
	for w := 0; w < nw; w++ {
		lo := w * n / nw
		hi := (w + 1) * n / nw
		go func(lo, hi int) {
			for i := lo; i < hi; i++ {
				fn(i)
			}
			done <- struct{}{}
		}(lo, hi)
	}
	for w := 0; w < nw; w++ {
		<-done
	}
}

// KernelMatrix returns the SNGD kernel K = (A Aᵀ) ∘ (G Gᵀ) of Eq. (7).
// A and G must both be m×d (per-sample inputs and output gradients); the
// result is m×m, symmetric positive semi-definite.
func KernelMatrix(a, g *Dense) *Dense {
	out := NewDense(a.rows, a.rows)
	KernelMatrixInto(out, a, g)
	return out
}

// KernelMatrixInto sets dst = (A Aᵀ) ∘ (G Gᵀ) without allocating beyond
// two pooled m×m scratch matrices. dst must be m×m and must not alias a
// or g.
func KernelMatrixInto(dst, a, g *Dense) {
	if a.rows != g.rows {
		panic("mat: KernelMatrix row mismatch")
	}
	m := a.rows
	if dst.rows != m || dst.cols != m {
		panic("mat: KernelMatrixInto destination dimension mismatch")
	}
	checkNoAlias("KernelMatrixInto", dst, a, g)
	kg := getDenseRaw(m, m)
	GramInto(dst, a)
	GramInto(kg, g)
	HadamardInto(dst, dst, kg)
	PutDense(kg)
}

// KhatriRao returns the row-wise Khatri-Rao product U = A ⊙ G of Eq. (5):
// row i of the result is the Kronecker product of row i of a with row i of
// g, so the output is m × (a.cols*g.cols). This is the per-sample Jacobian
// structure U = A ⊙ G.
func KhatriRao(a, g *Dense) *Dense {
	if a.rows != g.rows {
		panic("mat: KhatriRao row mismatch")
	}
	m, da, dg := a.rows, a.cols, g.cols
	out := NewDense(m, da*dg)
	for i := 0; i < m; i++ {
		ar, gr := a.Row(i), g.Row(i)
		orow := out.Row(i)
		for p, av := range ar {
			if av == 0 {
				continue
			}
			base := p * dg
			for q, gv := range gr {
				orow[base+q] = av * gv
			}
		}
	}
	return out
}

// Kron returns the Kronecker product a ⊗ b.
func Kron(a, b *Dense) *Dense {
	out := NewDense(a.rows*b.rows, a.cols*b.cols)
	KronInto(out, a, b)
	return out
}

// KronInto sets dst = a ⊗ b without allocating. dst must be
// (a.rows·b.rows) × (a.cols·b.cols), is fully overwritten, and must not
// alias a or b.
func KronInto(dst, a, b *Dense) {
	if dst.rows != a.rows*b.rows || dst.cols != a.cols*b.cols {
		panic("mat: KronInto destination dimension mismatch")
	}
	checkNoAlias("KronInto", dst, a, b)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			av := a.At(i, j)
			for p := 0; p < b.rows; p++ {
				out := dst.Row(i*b.rows + p)[j*b.cols : (j+1)*b.cols]
				src := b.Row(p)
				for q := range src {
					out[q] = av * src[q]
				}
			}
		}
	}
}

// KhatriRaoApply computes U*v for U = A ⊙ G without materializing U.
// v has length a.cols*g.cols; the result has length a.rows. Row i of U is
// vec(aᵢ gᵢᵀ)ᵀ, so (U v)ᵢ = aᵢᵀ V gᵢ where V is v reshaped a.cols×g.cols.
func KhatriRaoApply(a, g *Dense, v []float64) []float64 {
	out := make([]float64, a.rows)
	KhatriRaoApplyInto(out, a, g, v)
	return out
}

// KhatriRaoApplyInto computes dst = U*v for U = A ⊙ G without allocating
// beyond one pooled g.cols scratch vector. dst must have length a.rows and
// must not alias v.
func KhatriRaoApplyInto(dst []float64, a, g *Dense, v []float64) {
	if a.rows != g.rows || len(v) != a.cols*g.cols {
		panic("mat: KhatriRaoApply dimension mismatch")
	}
	if len(dst) != a.rows {
		panic("mat: KhatriRaoApplyInto destination length mismatch")
	}
	dg := g.cols
	tmp := getFloatsRaw(dg)
	for i := 0; i < a.rows; i++ {
		ar, gr := a.Row(i), g.Row(i)
		for q := range tmp {
			tmp[q] = 0
		}
		for p, av := range ar {
			if av == 0 {
				continue
			}
			axpy(tmp, v[p*dg:(p+1)*dg], av)
		}
		dst[i] = Dot(tmp, gr)
	}
	PutFloats(tmp)
}

// KhatriRaoApplyT computes Uᵀ*y for U = A ⊙ G without materializing U.
// y has length a.rows; the result has length a.cols*g.cols. Uᵀ y =
// vec(Σᵢ yᵢ aᵢ gᵢᵀ) = vec(Aᵀ diag(y) G).
func KhatriRaoApplyT(a, g *Dense, y []float64) []float64 {
	out := make([]float64, a.cols*g.cols)
	KhatriRaoApplyTInto(out, a, g, y)
	return out
}

// KhatriRaoApplyTInto computes dst = Uᵀ*y without allocating. dst must
// have length a.cols*g.cols, is fully overwritten, and must not alias y.
func KhatriRaoApplyTInto(dst []float64, a, g *Dense, y []float64) {
	if a.rows != g.rows || len(y) != a.rows {
		panic("mat: KhatriRaoApplyT dimension mismatch")
	}
	dg := g.cols
	if len(dst) != a.cols*dg {
		panic("mat: KhatriRaoApplyTInto destination length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		ar, gr := a.Row(i), g.Row(i)
		for p, av := range ar {
			c := yi * av
			if c == 0 {
				continue
			}
			axpy(dst[p*dg:(p+1)*dg], gr, c)
		}
	}
}

// RowNorms returns the Euclidean norm of each row of m.
func RowNorms(m *Dense) []float64 {
	out := make([]float64, m.rows)
	RowNormsInto(out, m)
	return out
}

// RowNormsInto fills dst with the Euclidean norm of each row of m without
// allocating. dst must have length m.rows.
func RowNormsInto(dst []float64, m *Dense) {
	if len(dst) != m.rows {
		panic("mat: RowNormsInto destination length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Norm2(m.Row(i))
	}
}

// VStackInto stacks matrices vertically into dst (all inputs must share
// dst's column count and their row counts must sum to dst's). dst must not
// alias any input.
func VStackInto(dst *Dense, ms ...*Dense) {
	rows := 0
	for _, m := range ms {
		if m.cols != dst.cols {
			panic("mat: VStackInto column mismatch")
		}
		rows += m.rows
	}
	if rows != dst.rows {
		panic("mat: VStackInto row mismatch")
	}
	checkNoAlias("VStackInto", dst, ms...)
	off := 0
	for _, m := range ms {
		copy(dst.data[off:], m.data)
		off += len(m.data)
	}
}
