package mat

import (
	"fmt"
	"testing"
)

// benchGEMM reports GEMM throughput in GFLOP/s (2mnk flops per multiply).
func benchGEMM(b *testing.B, n int) {
	rng := NewRNG(1)
	x := RandN(rng, n, n, 1)
	y := RandN(rng, n, n, 1)
	out := NewDense(n, n)
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(out, x, y)
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(flops/sec/1e9, "GFLOP/s")
}

func BenchmarkGEMM_256(b *testing.B)  { benchGEMM(b, 256) }
func BenchmarkGEMM_512(b *testing.B)  { benchGEMM(b, 512) }
func BenchmarkGEMM_1024(b *testing.B) { benchGEMM(b, 1024) }

// BenchmarkGEMMTA_512 exercises the transposed-A path, which the packed
// kernel handles without materializing aᵀ.
func BenchmarkGEMMTA_512(b *testing.B) {
	rng := NewRNG(2)
	x := RandN(rng, 512, 512, 1)
	y := RandN(rng, 512, 512, 1)
	out := NewDense(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulTAInto(out, x, y)
	}
}

// BenchmarkGEMMTB_512 exercises the transposed-B path.
func BenchmarkGEMMTB_512(b *testing.B) {
	rng := NewRNG(2)
	x := RandN(rng, 512, 512, 1)
	y := RandN(rng, 512, 512, 1)
	out := NewDense(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulTBInto(out, x, y)
	}
}

// BenchmarkGram measures the SYRK used to build kernel matrices (m=512
// samples, d=256 features).
func BenchmarkGram(b *testing.B) {
	rng := NewRNG(3)
	m := RandN(rng, 512, 256, 1)
	out := NewDense(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GramInto(out, m)
	}
}

// BenchmarkKernelMatrix measures K = AAᵀ ∘ GGᵀ (Eq. 7) end to end.
func BenchmarkKernelMatrix(b *testing.B) {
	rng := NewRNG(4)
	a := RandN(rng, 256, 128, 1)
	g := RandN(rng, 256, 64, 1)
	out := NewDense(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KernelMatrixInto(out, a, g)
	}
}

// BenchmarkWorkspacePool measures a checkout/return round trip.
func BenchmarkWorkspacePool(b *testing.B) {
	sizes := []int{64, 256, 1024, 4096}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := sizes[i%len(sizes)]
		buf := GetFloats(n)
		PutFloats(buf)
	}
}

func ExampleWorkspace() {
	ws := NewWorkspace()
	defer ws.Release()
	t := ws.Dense(2, 2)
	fmt.Println(t.Rows(), t.Cols())
	// Output: 2 2
}
