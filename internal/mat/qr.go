package mat

import "math"

// QRPivot holds a column-pivoted Householder QR factorization
// a*Π = Q*R, with qr packing the Householder vectors below the diagonal
// and R on and above it, following the LAPACK dgeqp3 layout.
type QRPivot struct {
	qr   *Dense
	tau  []float64
	perm []int // perm[k] = original column index now in position k
}

// FactorQRPivot computes a column-pivoted QR factorization of a.
// a is not modified.
func FactorQRPivot(a *Dense) *QRPivot {
	return factorQRPivotInPlace(a.Clone())
}

// factorQRPivotInPlace factors qr destructively, taking ownership of its
// storage; the hot path pairs it with putQRPivot to recycle everything.
func factorQRPivotInPlace(qr *Dense) *QRPivot {
	m, n := qr.rows, qr.cols
	k := min(m, n)
	tau := GetFloats(k)
	perm := getInts(n)
	colNorm := GetFloats(n)
	defer PutFloats(colNorm)
	for j := 0; j < n; j++ {
		perm[j] = j
		colNorm[j] = colNormSq(qr, j, 0)
	}
	for step := 0; step < k; step++ {
		// Pick the column with the largest remaining norm.
		p, best := step, colNorm[step]
		for j := step + 1; j < n; j++ {
			if colNorm[j] > best {
				p, best = j, colNorm[j]
			}
		}
		if p != step {
			swapCols(qr, step, p)
			perm[step], perm[p] = perm[p], perm[step]
			colNorm[step], colNorm[p] = colNorm[p], colNorm[step]
		}
		// Householder vector for column `step`, rows step..m-1.
		alpha := houseGen(qr, step, &tau[step])
		// Apply H = I - tau v vᵀ to trailing columns.
		if tau[step] != 0 {
			for j := step + 1; j < n; j++ {
				// w = vᵀ * col_j (v has implicit 1 at row `step`).
				w := qr.At(step, j)
				for i := step + 1; i < m; i++ {
					w += qr.At(i, step) * qr.At(i, j)
				}
				w *= tau[step]
				qr.Set(step, j, qr.At(step, j)-w)
				for i := step + 1; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)-w*qr.At(i, step))
				}
			}
		}
		qr.Set(step, step, alpha)
		// Downdate column norms.
		for j := step + 1; j < n; j++ {
			v := qr.At(step, j)
			colNorm[j] -= v * v
			if colNorm[j] < 1e-12*math.Abs(colNorm[j])+1e-300 || colNorm[j] < 0 {
				colNorm[j] = colNormSq(qr, j, step+1)
			}
		}
	}
	return &QRPivot{qr: qr, tau: tau, perm: perm}
}

// houseGen builds the Householder reflector that annihilates column `step`
// below the diagonal; the vector is stored in rows step+1.. with an
// implicit leading 1, and the resulting diagonal entry of R is returned.
func houseGen(qr *Dense, step int, tau *float64) float64 {
	m := qr.rows
	var normSq float64
	x0 := qr.At(step, step)
	for i := step + 1; i < m; i++ {
		v := qr.At(i, step)
		normSq += v * v
	}
	if normSq == 0 {
		*tau = 0
		return x0
	}
	beta := math.Sqrt(x0*x0 + normSq)
	if x0 > 0 {
		beta = -beta
	}
	*tau = (beta - x0) / beta
	scale := 1 / (x0 - beta)
	for i := step + 1; i < m; i++ {
		qr.Set(i, step, qr.At(i, step)*scale)
	}
	return beta
}

func colNormSq(m *Dense, j, from int) float64 {
	var s float64
	for i := from; i < m.rows; i++ {
		v := m.At(i, j)
		s += v * v
	}
	return s
}

func swapCols(m *Dense, a, b int) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		row[a], row[b] = row[b], row[a]
	}
}

// putQRPivot recycles a factorization built by factorQRPivotInPlace. Only
// safe when nothing returned from the factorization object escapes.
func putQRPivot(f *QRPivot) {
	PutDense(f.qr)
	PutFloats(f.tau)
	putInts(f.perm)
	f.qr, f.tau, f.perm = nil, nil, nil
}

// Perm returns the column permutation (position -> original column index).
func (f *QRPivot) Perm() []int { return f.perm }

// NumericalRank returns the numerical rank detected from the pivoted-QR
// diagonal: the largest k such that |R(k-1,k-1)| > tol·|R(0,0)|. Column
// pivoting makes the diagonal magnitudes non-increasing, so the first
// diagonal entry that decays below the relative tolerance marks the rank.
// A non-positive tol disables detection (full rank min(m,n) is returned);
// an all-zero or non-finite leading diagonal reports rank 0.
func (f *QRPivot) NumericalRank(tol float64) int {
	k := min(f.qr.rows, f.qr.cols)
	if k == 0 {
		return 0
	}
	d0 := math.Abs(f.qr.At(0, 0))
	if d0 == 0 || math.IsNaN(d0) || math.IsInf(d0, 0) {
		return 0
	}
	if tol <= 0 {
		return k
	}
	for i := 1; i < k; i++ {
		d := math.Abs(f.qr.At(i, i))
		if math.IsNaN(d) || d <= tol*d0 {
			return i
		}
	}
	return k
}

// R returns the upper-triangular factor (k×n, k = min(m,n)).
func (f *QRPivot) R() *Dense {
	m, n := f.qr.rows, f.qr.cols
	return f.rInto(NewDense(min(m, n), n))
}

// rInto writes the upper-triangular factor into r (pre-zeroed k×n).
func (f *QRPivot) rInto(r *Dense) *Dense {
	n := f.qr.cols
	k := min(f.qr.rows, n)
	for i := 0; i < k; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// Q returns the thin orthogonal factor (m×k).
func (f *QRPivot) Q() *Dense {
	m := f.qr.rows
	k := len(f.tau)
	q := NewDense(m, k)
	for i := 0; i < k; i++ {
		q.Set(i, i, 1)
	}
	// Apply H_k ... H_1 to the identity from the left, in reverse order.
	for step := k - 1; step >= 0; step-- {
		t := f.tau[step]
		if t == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			w := q.At(step, j)
			for i := step + 1; i < m; i++ {
				w += f.qr.At(i, step) * q.At(i, j)
			}
			w *= t
			q.Set(step, j, q.At(step, j)-w)
			for i := step + 1; i < m; i++ {
				q.Set(i, j, q.At(i, j)-w*f.qr.At(i, step))
			}
		}
	}
	return q
}

// InterpolativeDecomp computes a rank-r row interpolative decomposition of
// q: it returns a projection matrix P (m×r) and row indices S (len r) such
// that q ≈ P * q[S, :]. This is Algorithm 2's ID(Q, r) step: a row ID of Q
// is a column ID of Qᵀ obtained from column-pivoted QR (Biagioni & Beylkin,
// "Randomized interpolative decomposition of separated representations").
//
// r is clamped to min(q.Rows(), q.Cols()).
func InterpolativeDecomp(q *Dense, r int) (p *Dense, s []int) {
	return InterpolativeDecompTol(q, r, 0)
}

// InterpolativeDecompTol is InterpolativeDecomp with numerical-rank
// truncation: when tol > 0 and the pivoted-QR diagonal decays below
// tol·|R(0,0)| before reaching r, the returned factorization truncates to
// the detected rank (at least 1). Duplicated or near-collinear batch rows
// make the Gram matrix numerically rank-deficient — truncating keeps the
// back-substitution for the interpolation coefficients away from the
// noise-level pivots that would otherwise amplify into the factors.
func InterpolativeDecompTol(q *Dense, r int, tol float64) (p *Dense, s []int) {
	m := q.rows
	r = min(r, min(m, q.cols))
	if r <= 0 {
		return NewDense(m, 0), nil
	}
	qt := getDenseRaw(q.cols, q.rows)
	q.TInto(qt)
	// Column ID of qᵀ ≡ row ID of q; the factorization takes ownership of
	// qt and putQRPivot below recycles it.
	f := factorQRPivotInPlace(qt)
	if tol > 0 {
		if nr := f.NumericalRank(tol); nr < r {
			r = max(nr, 1)
		}
	}
	perm := f.perm
	s = append([]int(nil), perm[:r]...)

	// R = [R11 R12] with R11 r×r upper-triangular. The interpolation
	// coefficients are T = R11⁻¹ R12 (r × (m-r)), giving
	// qᵀ Π ≈ (qᵀ)_S [I T]  ⇒  q ≈ Πᵀ [I; Tᵀ] q_S.
	rm := f.rInto(GetDense(min(qt.rows, qt.cols), qt.cols))
	t := GetDense(r, m-r)
	col := GetFloats(r)
	for j := 0; j < m-r; j++ {
		// Back-substitute R11 * x = R12[:, j].
		for i := 0; i < r; i++ {
			col[i] = rm.At(i, r+j)
		}
		for i := r - 1; i >= 0; i-- {
			sum := col[i]
			for k := i + 1; k < r; k++ {
				sum -= rm.At(i, k) * t.At(k, j)
			}
			d := rm.At(i, i)
			if d == 0 {
				t.Set(i, j, 0)
				continue
			}
			t.Set(i, j, sum/d)
		}
	}
	PutFloats(col)
	PutDense(rm)
	// Assemble P: row perm[k] of P is e_k for k<r, and row perm[r+j] is
	// the j-th column of T.
	p = NewDense(m, r)
	for k := 0; k < r; k++ {
		p.Set(perm[k], k, 1)
	}
	for j := 0; j < m-r; j++ {
		dst := p.Row(perm[r+j])
		for k := 0; k < r; k++ {
			dst[k] = t.At(k, j)
		}
	}
	PutDense(t)
	putQRPivot(f)
	return p, s
}
