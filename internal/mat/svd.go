package mat

import "math"

// SVDThin computes the thin singular value decomposition a = U Σ Vᵀ of an
// m×n matrix via the symmetric eigendecomposition of the smaller Gram
// matrix (aᵀa when m ≥ n, aaᵀ otherwise). Singular values are returned in
// descending order; u is m×k and v is n×k with k = min(m, n).
//
// The Gram route squares the condition number, so singular values below
// ≈√ε·σ₁ lose accuracy — fine for the spectrum analyses this library
// needs (rank estimation, nuclear norms), not for ill-posed solves.
func SVDThin(a *Dense) (u *Dense, sigma []float64, v *Dense) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return NewDense(m, 0), nil, NewDense(n, 0)
	}
	if m >= n {
		vals, vecs := SymEig(GramT(a)) // n×n, ascending
		k := n
		sigma = make([]float64, k)
		v = NewDense(n, k)
		for j := 0; j < k; j++ {
			src := k - 1 - j // descending
			s := vals[src]
			if s < 0 {
				s = 0
			}
			sigma[j] = math.Sqrt(s)
			for i := 0; i < n; i++ {
				v.Set(i, j, vecs.At(i, src))
			}
		}
		// U = A V Σ⁻¹ column-wise; zero columns for null singular values.
		av := Mul(a, v)
		u = NewDense(m, k)
		for j := 0; j < k; j++ {
			if sigma[j] > 1e-300 {
				inv := 1 / sigma[j]
				for i := 0; i < m; i++ {
					u.Set(i, j, av.At(i, j)*inv)
				}
			}
		}
		return u, sigma, v
	}
	// m < n: decompose aᵀ and swap factors.
	vT, sigma, uT := SVDThin(a.T())
	return uT, sigma, vT
}

// NuclearNorm returns the sum of singular values.
func NuclearNorm(a *Dense) float64 {
	_, s, _ := SVDThin(a)
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

// SpectralNorm returns the largest singular value.
func SpectralNorm(a *Dense) float64 {
	_, s, _ := SVDThin(a)
	if len(s) == 0 {
		return 0
	}
	return s[0]
}
