package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSVDThinReconstruction(t *testing.T) {
	rng := NewRNG(91)
	for _, dims := range [][2]int{{5, 5}, {12, 7}, {7, 12}, {30, 30}} {
		a := RandN(rng, dims[0], dims[1], 1)
		u, s, v := SVDThin(a)
		// Rebuild U Σ Vᵀ.
		us := u.Clone()
		for j := 0; j < len(s); j++ {
			for i := 0; i < u.Rows(); i++ {
				us.Set(i, j, us.At(i, j)*s[j])
			}
		}
		rec := MulTB(us, v)
		if d := MaxAbsDiff(rec, a); d > 1e-7 {
			t.Fatalf("dims %v: SVD reconstruction error %g", dims, d)
		}
		// Orthonormal factors.
		if d := MaxAbsDiff(MulTA(u, u), Identity(len(s))); d > 1e-7 {
			t.Fatalf("dims %v: UᵀU error %g", dims, d)
		}
		if d := MaxAbsDiff(MulTA(v, v), Identity(len(s))); d > 1e-7 {
			t.Fatalf("dims %v: VᵀV error %g", dims, d)
		}
		// Descending singular values.
		for j := 1; j < len(s); j++ {
			if s[j] > s[j-1]+1e-12 {
				t.Fatalf("singular values not descending: %v", s)
			}
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, -4}})
	_, s, _ := SVDThin(a)
	if math.Abs(s[0]-4) > 1e-10 || math.Abs(s[1]-3) > 1e-10 {
		t.Fatalf("singular values = %v; want [4 3]", s)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	rng := NewRNG(92)
	a := RandLowRank(rng, 10, 8, 3, 0)
	_, s, _ := SVDThin(a)
	for j := 3; j < len(s); j++ {
		if s[j] > 1e-6*s[0] {
			t.Fatalf("rank-3 matrix has σ[%d] = %g", j, s[j])
		}
	}
}

func TestSVDEmpty(t *testing.T) {
	u, s, v := SVDThin(NewDense(0, 3))
	if len(s) != 0 || u.Rows() != 0 || v.Rows() != 3 {
		t.Fatal("empty SVD dims wrong")
	}
}

func TestSpectralAndNuclearNorms(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 5}})
	if got := SpectralNorm(a); math.Abs(got-5) > 1e-10 {
		t.Fatalf("SpectralNorm = %g; want 5", got)
	}
	if got := NuclearNorm(a); math.Abs(got-7) > 1e-10 {
		t.Fatalf("NuclearNorm = %g; want 7", got)
	}
}

// Property: ‖A‖_F² = Σσ², and spectral norm matches power iteration on AᵀA.
func TestSVDNormIdentityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*67 + 9)
		m := 2 + rng.Intn(10)
		n := 2 + rng.Intn(10)
		a := RandN(rng, m, n, 1)
		_, s, _ := SVDThin(a)
		var ss float64
		for _, v := range s {
			ss += v * v
		}
		fn := a.FrobNorm()
		return math.Abs(ss-fn*fn) < 1e-8*(1+fn*fn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
