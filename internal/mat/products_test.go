package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Hadamard(a, b)
	want := FromRows([][]float64{{5, 12}, {21, 32}})
	if !Equal(got, want, 0) {
		t.Fatalf("Hadamard = %v; want %v", got, want)
	}
	dst := NewDense(2, 2)
	HadamardInto(dst, a, b)
	if !Equal(dst, want, 0) {
		t.Fatalf("HadamardInto = %v; want %v", dst, want)
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	rng := NewRNG(41)
	a := RandN(rng, 10, 7, 1)
	g := Gram(a)
	if d := MaxAbsDiff(g, g.T()); d > 1e-12 {
		t.Fatalf("Gram not symmetric: %g", d)
	}
	vals := SymEigValues(g)
	for _, v := range vals {
		if v < -1e-9 {
			t.Fatalf("Gram has negative eigenvalue %g", v)
		}
	}
}

func TestKernelMatrixIsKhatriRaoGram(t *testing.T) {
	// Key structural identity behind Eq. (7): (A⊙G)(A⊙G)ᵀ = AAᵀ ∘ GGᵀ.
	rng := NewRNG(42)
	a := RandN(rng, 8, 5, 1)
	g := RandN(rng, 8, 6, 1)
	k1 := KernelMatrix(a, g)
	k2 := Gram(KhatriRao(a, g))
	if d := MaxAbsDiff(k1, k2); d > 1e-10 {
		t.Fatalf("kernel identity violated by %g", d)
	}
}

func TestKhatriRaoShape(t *testing.T) {
	rng := NewRNG(43)
	a := RandN(rng, 4, 3, 1)
	g := RandN(rng, 4, 5, 1)
	u := KhatriRao(a, g)
	if r, c := u.Dims(); r != 4 || c != 15 {
		t.Fatalf("KhatriRao dims = %d,%d; want 4,15", r, c)
	}
	// Row 2 must equal kron(a[2,:], g[2,:]).
	for p := 0; p < 3; p++ {
		for q := 0; q < 5; q++ {
			want := a.At(2, p) * g.At(2, q)
			if got := u.At(2, p*5+q); math.Abs(got-want) > 1e-14 {
				t.Fatalf("U[2,%d] = %g; want %g", p*5+q, got, want)
			}
		}
	}
}

func TestKronKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{0, 3}, {4, 0}})
	got := Kron(a, b)
	want := FromRows([][]float64{
		{0, 3, 0, 6},
		{4, 0, 8, 0},
	})
	if !Equal(got, want, 0) {
		t.Fatalf("Kron = %v; want %v", got, want)
	}
}

func TestKhatriRaoApplyMatchesDense(t *testing.T) {
	rng := NewRNG(44)
	a := RandN(rng, 6, 4, 1)
	g := RandN(rng, 6, 3, 1)
	u := KhatriRao(a, g)
	v := make([]float64, 12)
	for i := range v {
		v[i] = rng.Norm()
	}
	got := KhatriRaoApply(a, g, v)
	want := MulVec(u, v)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("KhatriRaoApply[%d] = %g; want %g", i, got[i], want[i])
		}
	}
	y := make([]float64, 6)
	for i := range y {
		y[i] = rng.Norm()
	}
	gotT := KhatriRaoApplyT(a, g, y)
	wantT := MulVecT(u, y)
	for i := range gotT {
		if math.Abs(gotT[i]-wantT[i]) > 1e-10 {
			t.Fatalf("KhatriRaoApplyT[%d] = %g; want %g", i, gotT[i], wantT[i])
		}
	}
}

func TestRowNorms(t *testing.T) {
	m := FromRows([][]float64{{3, 4}, {0, 0}, {1, 0}})
	got := RowNorms(m)
	want := []float64{5, 0, 1}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-14 {
			t.Fatalf("RowNorms = %v; want %v", got, want)
		}
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Norm2 must not overflow on huge components.
	x := []float64{1e300, 1e300}
	got := Norm2(x)
	want := math.Sqrt2 * 1e300
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 = %g; want %g", got, want)
	}
	if Norm2(nil) != 0 || Norm2([]float64{0, 0}) != 0 {
		t.Fatal("Norm2 of zero vector must be 0")
	}
}

// Property: Khatri-Rao kernel identity holds for random shapes.
func TestKernelIdentityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*39 + 11)
		m := 1 + rng.Intn(8)
		da := 1 + rng.Intn(8)
		dg := 1 + rng.Intn(8)
		a := RandN(rng, m, da, 1)
		g := RandN(rng, m, dg, 1)
		return MaxAbsDiff(KernelMatrix(a, g), Gram(KhatriRao(a, g))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hadamard product of PSD matrices is PSD (Schur product theorem)
// — this is what makes the SNGD kernel matrix PSD.
func TestSchurProductPSDProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*71 + 23)
		n := 2 + rng.Intn(8)
		p := Gram(RandN(rng, n, n+1, 1))
		q := Gram(RandN(rng, n, n+1, 1))
		vals := SymEigValues(Hadamard(p, q))
		for _, v := range vals {
			if v < -1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The SYRK-style Gram must equal the general product exactly (same Dot
// kernel per element).
func TestGramMatchesGeneralProduct(t *testing.T) {
	rng := NewRNG(120)
	for _, dims := range [][2]int{{1, 3}, {7, 4}, {40, 17}, {100, 8}} {
		m := RandN(rng, dims[0], dims[1], 1)
		if d := MaxAbsDiff(Gram(m), MulTB(m, m)); d > 1e-12 {
			t.Fatalf("dims %v: SYRK Gram differs from general product by %g", dims, d)
		}
	}
}

func BenchmarkGram512(b *testing.B) {
	rng := NewRNG(1)
	m := RandN(rng, 512, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gram(m)
	}
}

func BenchmarkGramGeneral512(b *testing.B) {
	rng := NewRNG(1)
	m := RandN(rng, 512, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulTB(m, m)
	}
}
