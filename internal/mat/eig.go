package mat

import (
	"math"
	"sort"
)

// SymEig computes the full eigendecomposition of a symmetric matrix.
// It returns the eigenvalues in ascending order and a matrix whose columns
// are the corresponding orthonormal eigenvectors, so a = V diag(vals) Vᵀ.
//
// The implementation is the classic dense path: Householder reduction to
// tridiagonal form followed by the implicit-shift QL iteration.
func SymEig(a *Dense) ([]float64, *Dense) {
	if a.rows != a.cols {
		panic("mat: SymEig needs a square matrix")
	}
	n := a.rows
	if n == 0 {
		return nil, NewDense(0, 0)
	}
	v := a.Clone() // destroyed and replaced by eigenvectors
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e)
	tqli(d, e, v)
	// Sort ascending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return d[idx[i]] < d[idx[j]] })
	vals := make([]float64, n)
	vecs := NewDense(n, n)
	for newCol, oldCol := range idx {
		vals[newCol] = d[oldCol]
		for r := 0; r < n; r++ {
			vecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return vals, vecs
}

// SymEigValues returns only the eigenvalues of a symmetric matrix, in
// ascending order. It skips eigenvector accumulation, which roughly halves
// the work — useful for rank analyses over many kernel matrices (Fig. 10).
func SymEigValues(a *Dense) []float64 {
	if a.rows != a.cols {
		panic("mat: SymEigValues needs a square matrix")
	}
	n := a.rows
	if n == 0 {
		return nil
	}
	v := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2NoVecs(v, d, e)
	tqliNoVecs(d, e)
	sort.Float64s(d)
	return d
}

// tred2 reduces the symmetric matrix stored in v to tridiagonal form,
// accumulating the orthogonal transform in v. On return d holds the
// diagonal and e the subdiagonal (e[0] unused).
func tred2(v *Dense, d, e []float64) {
	n := v.rows
	for i := n - 1; i > 0; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(v.At(i, k))
			}
			if scale == 0 {
				e[i] = v.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v.Set(i, k, v.At(i, k)/scale)
					h += v.At(i, k) * v.At(i, k)
				}
				f := v.At(i, l)
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				v.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					v.Set(j, i, v.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += v.At(j, k) * v.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += v.At(k, j) * v.At(i, k)
					}
					e[j] = g / h
					f += e[j] * v.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = v.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						v.Set(j, k, v.At(j, k)-(f*e[k]+g*v.At(i, k)))
					}
				}
			}
		} else {
			e[i] = v.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += v.At(i, k) * v.At(k, j)
				}
				for k := 0; k <= l; k++ {
					v.Set(k, j, v.At(k, j)-g*v.At(k, i))
				}
			}
		}
		d[i] = v.At(i, i)
		v.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			v.Set(j, i, 0)
			v.Set(i, j, 0)
		}
	}
}

// tred2NoVecs is tred2 without eigenvector accumulation.
func tred2NoVecs(v *Dense, d, e []float64) {
	n := v.rows
	for i := n - 1; i > 0; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(v.At(i, k))
			}
			if scale == 0 {
				e[i] = v.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v.Set(i, k, v.At(i, k)/scale)
					h += v.At(i, k) * v.At(i, k)
				}
				f := v.At(i, l)
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				v.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					g = 0
					for k := 0; k <= j; k++ {
						g += v.At(j, k) * v.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += v.At(k, j) * v.At(i, k)
					}
					e[j] = g / h
					f += e[j] * v.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = v.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						v.Set(j, k, v.At(j, k)-(f*e[k]+g*v.At(i, k)))
					}
				}
			}
		} else {
			e[i] = v.At(i, l)
		}
		d[i] = h
	}
	e[0] = 0
	for i := 0; i < n; i++ {
		d[i] = v.At(i, i)
	}
}

// tqli runs implicit-shift QL iterations on the tridiagonal matrix (d, e),
// accumulating rotations into the columns of z.
func tqli(d, e []float64, z *Dense) {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-300 || math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == 50 {
				// Give up refining this eigenvalue; the remaining error is
				// at the level of the unconverged off-diagonal.
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+withSign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
}

// tqliNoVecs is tqli without rotation accumulation.
func tqliNoVecs(d, e []float64) {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-300 || math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == 50 {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+withSign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
}

func withSign(a, b float64) float64 {
	if b >= 0 {
		return math.Abs(a)
	}
	return -math.Abs(a)
}
