package mat

import "math"

// Norm2 returns the Euclidean norm of a vector, guarding against overflow
// by scaling with the largest magnitude element: entries up to
// ~√MaxFloat64 apart stay exact, and even ±MaxFloat64 entries produce a
// finite-or-+Inf result instead of the NaN a naive sum-of-squares yields.
// An ±Inf entry returns +Inf (never NaN from the Inf/Inf scaling ratio).
func Norm2(x []float64) float64 {
	var maxAbs float64
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	if math.IsInf(maxAbs, 0) {
		return math.Inf(1)
	}
	var s float64
	for _, v := range x {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 { return Norm2(m.data) }

// MaxAbs returns max_ij |m_ij|.
func (m *Dense) MaxAbs() float64 {
	var d float64
	for _, v := range m.data {
		if a := math.Abs(v); a > d {
			d = a
		}
	}
	return d
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// PowerIterate estimates the largest eigenvalue (in magnitude) of a
// symmetric matrix by power iteration, returning the eigenvalue estimate
// and the number of iterations used. Useful for damping selection and
// condition monitoring without a full eigendecomposition.
func PowerIterate(sym *Dense, iters int, tol float64, rng *RNG) (float64, int) {
	n := sym.Rows()
	if n == 0 {
		return 0, 0
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Norm()
	}
	nrm := Norm2(v)
	if nrm == 0 {
		v[0] = 1
		nrm = 1
	}
	for i := range v {
		v[i] /= nrm
	}
	var lambda float64
	for it := 1; it <= iters; it++ {
		w := MulVec(sym, v)
		wn := Norm2(w)
		if wn == 0 {
			return 0, it
		}
		next := Dot(v, w)
		for i := range v {
			v[i] = w[i] / wn
		}
		if it > 1 && math.Abs(next-lambda) <= tol*math.Abs(next) {
			return next, it
		}
		lambda = next
	}
	return lambda, iters
}

// NumericalRank returns the paper's notion of numerical rank for a
// symmetric PSD matrix: the smallest k such that the k largest eigenvalues
// account for at least frac (e.g. 0.9) of the eigenvalue sum. Eigenvalues
// below a small floor are treated as zero.
func NumericalRank(sym *Dense, frac float64) int {
	vals, _ := SymEig(sym)
	// SymEig returns ascending order; walk from the top.
	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return 0
	}
	var acc float64
	k := 0
	for i := len(vals) - 1; i >= 0; i-- {
		if vals[i] <= 0 {
			break
		}
		acc += vals[i]
		k++
		if acc >= frac*total {
			break
		}
	}
	return k
}
