package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCGSolvesSPD(t *testing.T) {
	rng := NewRNG(101)
	for _, n := range []int{1, 5, 20, 60} {
		a := RandSPD(rng, n, 1)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Norm()
		}
		x, iters := CG(a, b, 1e-12, 10*n)
		res := MulVec(a, x)
		for i := range res {
			res[i] -= b[i]
		}
		if Norm2(res)/Norm2(b) > 1e-9 {
			t.Fatalf("n=%d: CG residual %g after %d iters", n, Norm2(res)/Norm2(b), iters)
		}
	}
}

func TestCGExactInNSteps(t *testing.T) {
	// Exact arithmetic guarantees convergence in ≤ n iterations; in floats
	// allow a little slack.
	rng := NewRNG(102)
	n := 25
	a := RandSPD(rng, n, 1)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.Norm()
	}
	_, iters := CG(a, b, 1e-10, 5*n)
	if iters > n+10 {
		t.Fatalf("CG used %d iterations for n=%d", iters, n)
	}
}

func TestCGZeroRHS(t *testing.T) {
	rng := NewRNG(103)
	a := RandSPD(rng, 6, 1)
	x, iters := CG(a, make([]float64, 6), 1e-12, 100)
	if iters != 0 || Norm2(x) != 0 {
		t.Fatalf("CG on zero rhs: %d iters, ‖x‖=%g", iters, Norm2(x))
	}
}

func TestCGMatchesCholesky(t *testing.T) {
	rng := NewRNG(104)
	a := RandSPD(rng, 30, 2)
	b := RandN(rng, 30, 3, 1)
	xCG := CGSolveColumns(a, b, 1e-12, 400)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	xCh := SolveCholesky(l, b)
	if d := MaxAbsDiff(xCG, xCh); d > 1e-7 {
		t.Fatalf("CG and Cholesky solutions differ by %g", d)
	}
}

// Property: the damped SNGD kernel solve via CG matches the explicit
// inverse application on random captures.
func TestCGKernelSolveProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed)*143 + 17)
		m := 3 + rng.Intn(12)
		d := 2 + rng.Intn(5)
		a := RandN(rng, m, d, 1)
		g := RandN(rng, m, d, 1)
		k := KernelMatrix(a, g).AddDiag(0.5)
		y := make([]float64, m)
		for i := range y {
			y[i] = rng.Norm()
		}
		z1, _ := CG(k, y, 1e-12, 50*m)
		kinv, err := InvSPD(k)
		if err != nil {
			return false
		}
		z2 := MulVec(kinv, y)
		for i := range z1 {
			if math.Abs(z1[i]-z2[i]) > 1e-6*(1+math.Abs(z2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCG256(b *testing.B) {
	rng := NewRNG(1)
	a := RandSPD(rng, 256, 1)
	rhs := make([]float64, 256)
	for i := range rhs {
		rhs[i] = rng.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CG(a, rhs, 1e-8, 512)
	}
}
