package mat

// RNGState is the serializable snapshot of an RNG. Capturing and restoring
// it lets checkpoints resume every stochastic stream (batch order, KIS
// sampling, augmentation) bit-exactly.
type RNGState struct {
	State    uint64
	HasSpare bool
	Spare    float64
}

// State returns a snapshot of the generator.
func (r *RNG) State() RNGState {
	return RNGState{State: r.state, HasSpare: r.hasSpare, Spare: r.spare}
}

// SetState rewinds the generator to a previously captured snapshot.
func (r *RNG) SetState(s RNGState) {
	r.state = s.State
	r.hasSpare = s.HasSpare
	r.spare = s.Spare
}

// DenseState is the serializable (gob-friendly) snapshot of a matrix. The
// zero value stands for a nil matrix, so optional per-layer state (factors
// not yet computed) round-trips without pointer gymnastics.
type DenseState struct {
	Rows, Cols int
	Data       []float64
}

// CaptureDense deep-copies m into a DenseState; a nil m yields the zero
// state.
func CaptureDense(m *Dense) DenseState {
	if m == nil {
		return DenseState{}
	}
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return DenseState{Rows: m.rows, Cols: m.cols, Data: d}
}

// Restore materializes the captured matrix, returning nil for the zero
// state.
func (s DenseState) Restore() *Dense {
	if s.Rows == 0 || s.Cols == 0 {
		return nil
	}
	m := NewDense(s.Rows, s.Cols)
	copy(m.data, s.Data)
	return m
}
