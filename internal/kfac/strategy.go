package kfac

import "math"

// Strategy selects KAISA's distribution mode for the second-order state.
//
// KAISA's contribution is a tunable placement of factor inversion work:
//   - CommOpt (communication-optimal): every worker keeps factors and
//     computes every layer's inverses locally — no inverse broadcast, at
//     the cost of redundant computation and full-state memory everywhere.
//   - MemOpt (memory-optimal): each layer's inversion runs only on its
//     owning worker and the inverses are broadcast; non-owners drop their
//     running factor copies, minimizing memory.
//   - Hybrid: per-layer choice by a memory budget — small layers go
//     comm-optimal, large layers memory-optimal (KAISA's default mode).
type Strategy int

// The three KAISA placement strategies.
const (
	// StrategyMemOpt inverts on the owner and broadcasts inverses.
	StrategyMemOpt Strategy = iota
	// StrategyCommOpt inverts redundantly on every worker.
	StrategyCommOpt
	// StrategyHybrid picks per layer by HybridBudgetBytes.
	StrategyHybrid
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyMemOpt:
		return "mem-opt"
	case StrategyCommOpt:
		return "comm-opt"
	default:
		return "hybrid"
	}
}

// layerCommOpt decides whether layer i runs communication-optimally under
// the configured strategy: under Hybrid, layers are admitted greedily (in
// index order) while the accumulated factor state fits the budget.
func (k *KFAC) layerCommOpt(i int) bool {
	switch k.Strategy {
	case StrategyCommOpt:
		return true
	case StrategyMemOpt:
		return false
	}
	// Hybrid: admit while cumulative factor bytes stay within budget.
	var used float64
	for j := 0; j <= i; j++ {
		dIn, dOut := k.layers[j].Dims()
		used += 8 * float64(dIn*dIn+dOut*dOut)
		if j == i {
			return used <= float64(k.HybridBudgetBytes)
		}
		if used > float64(k.HybridBudgetBytes) {
			return false
		}
	}
	return false
}

// piCorrection returns the Tikhonov damping split of the original KFAC
// paper: γ_A = π·√γ and γ_G = √γ/π with π² = (tr(A)/dim_A)/(tr(G)/dim_G),
// which balances the two Kronecker factors' scales. Degenerate traces fall
// back to the symmetric split π = 1.
func piCorrection(trA float64, dimA int, trG float64, dimG int, damping float64) (gA, gG float64) {
	root := math.Sqrt(damping)
	if trA <= 0 || trG <= 0 || dimA <= 0 || dimG <= 0 {
		return root, root
	}
	pi := math.Sqrt((trA / float64(dimA)) / (trG / float64(dimG)))
	if math.IsNaN(pi) || math.IsInf(pi, 0) || pi <= 0 {
		return root, root
	}
	return pi * root, root / pi
}
