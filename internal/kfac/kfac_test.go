package kfac

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/mat"
	"repro/internal/nn"
)

func capturedLinearNet(seed uint64, m, in, out int) *nn.Network {
	rng := mat.NewRNG(seed)
	net := nn.NewNetwork(nn.Vec(in), rng, nn.NewLinear(out))
	net.SetCapture(true)
	x := mat.RandN(rng, m, in, 1)
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % out
	}
	logits := net.Forward(x, true)
	_, g := nn.SoftmaxCrossEntropy{}.Forward(logits, nn.Target{Labels: labels})
	net.ZeroGrad()
	net.Backward(g)
	return net
}

// TestKFACMatchesAnalytic checks Precondition against the explicit
// (AᵀA/m + γI)⁻¹ · grad · (GᵀG/m + γI)⁻¹ on the first update.
func TestKFACMatchesAnalytic(t *testing.T) {
	const m, in, out, damping = 10, 4, 3, 0.1
	net := capturedLinearNet(1, m, in, out)
	l := net.KernelLayers()[0]
	a, g := l.Capture()
	grad := l.Weight().Grad.Clone()

	k := NewKFAC(net, damping, dist.Local(), nil)
	k.Update()
	k.Precondition()
	got := l.Weight().Grad

	gamma := math.Sqrt(damping)
	fa := mat.GramT(a).Scale(1 / float64(m)).AddDiag(gamma)
	fg := mat.GramT(g).Scale(1 / float64(m)).AddDiag(gamma)
	faInv, err := mat.InvSPD(fa)
	if err != nil {
		t.Fatal(err)
	}
	fgInv, err := mat.InvSPD(fg)
	if err != nil {
		t.Fatal(err)
	}
	want := mat.Mul(faInv, mat.Mul(grad, fgInv))
	if d := mat.MaxAbsDiff(got, want); d > 1e-8 {
		t.Fatalf("KFAC differs from analytic Kronecker inverse by %g", d)
	}
}

// TestKFACDistributedMatchesLocal: the factor all-reduce averages the
// per-worker covariances; with identical shards the result must equal the
// single-worker run.
func TestKFACDistributedMatchesLocal(t *testing.T) {
	const p, m, in, out, damping = 4, 8, 3, 2, 0.2
	ref := capturedLinearNet(5, m, in, out)
	refL := ref.KernelLayers()[0]
	gradFull := refL.Weight().Grad.Clone()
	kRef := NewKFAC(ref, damping, dist.Local(), nil)
	kRef.Update()
	kRef.Precondition()
	want := refL.Weight().Grad.Clone()

	results := make([]*mat.Dense, p)
	cluster := dist.NewCluster(p)
	cluster.Run(func(w *dist.Worker) {
		// Every worker sees the same local batch, so averaged factors equal
		// the local ones. The factor computation scales by m·P — feed the
		// same captures on each worker.
		net := capturedLinearNet(5, m, in, out)
		l := net.KernelLayers()[0]
		l.Weight().Grad.CopyFrom(gradFull)
		k := NewKFAC(net, damping, w, nil)
		k.Update()
		k.Precondition()
		results[w.Rank] = l.Weight().Grad.Clone()
	})
	for r := 0; r < p; r++ {
		// Factors computed at m·P normalization with P identical shards
		// equal factors at m with one shard scaled by 1... the allreduce
		// sums P copies of (AᵀA)/(mP) = AᵀA/m — identical to local. Exact.
		if d := mat.MaxAbsDiff(results[r], want); d > 1e-9 {
			t.Fatalf("rank %d: distributed KFAC differs by %g", r, d)
		}
	}
}

func TestKFACRunningAverage(t *testing.T) {
	// Two updates: the factor must be a Decay-weighted blend, which shows
	// up as a different preconditioned result than a fresh first update.
	net := capturedLinearNet(2, 12, 4, 3)
	k := NewKFAC(net, 0.1, dist.Local(), nil)
	k.Update()
	firstInv := k.state[0].aInv.Clone()
	// New pass with different data.
	rng := mat.NewRNG(777)
	x := mat.RandN(rng, 12, 4, 2)
	logits := net.Forward(x, true)
	_, g := nn.SoftmaxCrossEntropy{}.Forward(logits, nn.Target{Labels: []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}})
	net.ZeroGrad()
	net.Backward(g)
	k.Update()
	if d := mat.MaxAbsDiff(firstInv, k.state[0].aInv); d == 0 {
		t.Fatal("running average did not incorporate the second factor")
	}
}

func TestEKFACPreconditionFinite(t *testing.T) {
	net := capturedLinearNet(3, 10, 5, 4)
	e := NewEKFAC(net, 0.1, dist.Local(), nil)
	e.Update()
	e.Precondition()
	for _, v := range net.KernelLayers()[0].Weight().Grad.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("EKFAC produced non-finite gradient")
		}
	}
}

// EKFAC with its diagonal estimated from the same single gradient should
// reduce that gradient's own curvature-weighted norm — at minimum it must
// shrink the gradient compared to raw (the scale ≥ damping keeps it
// bounded).
func TestEKFACShrinksAlongObservedDirections(t *testing.T) {
	net := capturedLinearNet(4, 16, 5, 3)
	l := net.KernelLayers()[0]
	raw := l.Weight().Grad.Clone()
	e := NewEKFAC(net, 0.01, dist.Local(), nil)
	e.Update()
	e.Precondition()
	pg := l.Weight().Grad
	// The projected squared-gradient scale makes the preconditioned
	// gradient norm ≤ raw/damping; sanity-check finiteness + shrinkage
	// direction (strictly smaller than naive 1/damping blow-up).
	if pg.FrobNorm() >= raw.FrobNorm()/0.01 {
		t.Fatalf("EKFAC norm %g not below %g", pg.FrobNorm(), raw.FrobNorm()/0.01)
	}
}

func TestKFACStateBytes(t *testing.T) {
	net := capturedLinearNet(5, 8, 4, 3)
	k := NewKFAC(net, 0.1, dist.Local(), nil)
	// Before any update only the inverse buffers count: (25+9)*8 = 272.
	if got := k.StateBytes(); got != 272 {
		t.Fatalf("pre-update StateBytes = %d; want 272", got)
	}
	k.Update()
	// After an update the local worker owns the layer and stores factors
	// too: 2*(25+9)*8 = 544.
	if got := k.StateBytes(); got != 544 {
		t.Fatalf("post-update StateBytes = %d; want 544", got)
	}
}

func TestKFACTimelineRecords(t *testing.T) {
	tl := dist.NewTimeline()
	net := capturedLinearNet(6, 8, 4, 3)
	k := NewKFAC(net, 0.1, dist.Local(), tl)
	k.Update()
	for _, phase := range []string{dist.PhaseFactorize, dist.PhaseGather, dist.PhaseInvert, dist.PhaseBroadcast} {
		if tl.Count(phase) == 0 {
			t.Fatalf("phase %q not recorded", phase)
		}
	}
}

// All three KAISA strategies must produce identical preconditioned
// gradients — they move the same math to different workers.
func TestStrategiesAgree(t *testing.T) {
	const p, m, in, out, damping = 4, 8, 3, 2, 0.2
	runWith := func(strategy Strategy, budget int) []*mat.Dense {
		results := make([]*mat.Dense, p)
		ref := capturedLinearNet(9, m, in, out)
		gradFull := ref.KernelLayers()[0].Weight().Grad.Clone()
		cluster := dist.NewCluster(p)
		cluster.Run(func(w *dist.Worker) {
			net := capturedLinearNet(9, m, in, out)
			l := net.KernelLayers()[0]
			l.Weight().Grad.CopyFrom(gradFull)
			k := NewKFAC(net, damping, w, nil)
			k.Strategy = strategy
			k.HybridBudgetBytes = budget
			k.Update()
			k.Precondition()
			results[w.Rank] = l.Weight().Grad.Clone()
		})
		return results
	}
	memOpt := runWith(StrategyMemOpt, 0)
	commOpt := runWith(StrategyCommOpt, 0)
	hybrid := runWith(StrategyHybrid, 1<<20)
	for r := 0; r < p; r++ {
		if d := mat.MaxAbsDiff(memOpt[r], commOpt[r]); d > 1e-10 {
			t.Fatalf("rank %d: comm-opt differs from mem-opt by %g", r, d)
		}
		if d := mat.MaxAbsDiff(memOpt[r], hybrid[r]); d > 1e-10 {
			t.Fatalf("rank %d: hybrid differs from mem-opt by %g", r, d)
		}
	}
}

// Memory-optimal non-owners must hold less state than comm-optimal
// workers.
func TestStrategyMemoryOrdering(t *testing.T) {
	const p = 4
	measure := func(strategy Strategy) []int {
		bytes := make([]int, p)
		cluster := dist.NewCluster(p)
		cluster.Run(func(w *dist.Worker) {
			net := capturedLinearNet(10, 8, 6, 4) // single layer, owner = rank 0
			k := NewKFAC(net, 0.1, w, nil)
			k.Strategy = strategy
			k.Update()
			bytes[w.Rank] = k.StateBytes()
		})
		return bytes
	}
	mem := measure(StrategyMemOpt)
	comm := measure(StrategyCommOpt)
	// Under mem-opt only rank 0 (the single layer's owner) stores factors.
	if mem[1] >= mem[0] {
		t.Fatalf("mem-opt non-owner %d bytes not below owner %d", mem[1], mem[0])
	}
	// Under comm-opt every worker stores the full state.
	for r := 1; r < p; r++ {
		if comm[r] != comm[0] {
			t.Fatalf("comm-opt state should be uniform: %v", comm)
		}
	}
	if comm[1] <= mem[1] {
		t.Fatalf("comm-opt non-owner %d bytes not above mem-opt %d", comm[1], mem[1])
	}
}

func TestPiCorrection(t *testing.T) {
	gA, gG := piCorrection(10, 5, 2, 4, 0.04)
	// π² = (10/5)/(2/4) = 4, π = 2 → γA = 2·0.2 = 0.4, γG = 0.2/2 = 0.1.
	if math.Abs(gA-0.4) > 1e-12 || math.Abs(gG-0.1) > 1e-12 {
		t.Fatalf("pi correction = (%g, %g); want (0.4, 0.1)", gA, gG)
	}
	// Product of the split equals the undivided damping.
	if math.Abs(gA*gG-0.04) > 1e-12 {
		t.Fatal("π split should preserve γA·γG = γ")
	}
	// Degenerate traces fall back to the symmetric split.
	gA, gG = piCorrection(0, 5, 2, 4, 0.04)
	if math.Abs(gA-0.2) > 1e-12 || math.Abs(gG-0.2) > 1e-12 {
		t.Fatalf("degenerate fallback = (%g, %g); want (0.2, 0.2)", gA, gG)
	}
}

func TestPiCorrectedKFACTrains(t *testing.T) {
	net := capturedLinearNet(11, 10, 4, 3)
	k := NewKFAC(net, 0.1, dist.Local(), nil)
	k.PiCorrection = true
	k.Update()
	k.Precondition()
	for _, v := range net.KernelLayers()[0].Weight().Grad.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("π-corrected KFAC produced non-finite gradient")
		}
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyMemOpt.String() != "mem-opt" || StrategyCommOpt.String() != "comm-opt" ||
		StrategyHybrid.String() != "hybrid" {
		t.Fatal("Strategy.String wrong")
	}
}

func TestHybridBudgetSplitsLayers(t *testing.T) {
	// Two layers; budget fits exactly one layer's factors.
	rng := mat.NewRNG(12)
	net := nn.NewNetwork(nn.Vec(4), rng, nn.NewLinear(4), nn.NewReLU(), nn.NewLinear(3))
	k := NewKFAC(net, 0.1, dist.Local(), nil)
	k.Strategy = StrategyHybrid
	// Layer 0: dIn=5,dOut=4 → 8*(25+16)=328 bytes.
	k.HybridBudgetBytes = 400
	if !k.layerCommOpt(0) {
		t.Fatal("layer 0 should fit the hybrid budget")
	}
	if k.layerCommOpt(1) {
		t.Fatal("layer 1 should exceed the hybrid budget")
	}
}

// EKFAC distributed must match the single-worker run on identical shards,
// like KFAC (eigendecomposition + broadcast path).
func TestEKFACDistributedMatchesLocal(t *testing.T) {
	const p, m, in, out, damping = 3, 8, 3, 2, 0.2
	ref := capturedLinearNet(13, m, in, out)
	refL := ref.KernelLayers()[0]
	gradFull := refL.Weight().Grad.Clone()
	eRef := NewEKFAC(ref, damping, dist.Local(), nil)
	eRef.Update()
	eRef.Precondition()
	want := refL.Weight().Grad.Clone()

	results := make([]*mat.Dense, p)
	cluster := dist.NewCluster(p)
	cluster.Run(func(w *dist.Worker) {
		net := capturedLinearNet(13, m, in, out)
		l := net.KernelLayers()[0]
		l.Weight().Grad.CopyFrom(gradFull)
		e := NewEKFAC(net, damping, w, nil)
		e.Update()
		e.Precondition()
		results[w.Rank] = l.Weight().Grad.Clone()
	})
	for r := 0; r < p; r++ {
		// Eigenvectors have a sign ambiguity but the full preconditioning
		// map is sign-invariant, so results must agree.
		if d := mat.MaxAbsDiff(results[r], want); d > 1e-8 {
			t.Fatalf("rank %d: distributed EKFAC differs by %g", r, d)
		}
	}
}
