package kfac

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/mat"
)

// Checkpoint persistence for KFAC. Implements the ckpt.StateSaver contract
// structurally, so this package never imports ckpt.
//
// The running Kronecker factors are exponential moving averages — they
// cannot be rebuilt from a single post-restore batch, so losing them
// degrades curvature estimates for many update intervals. Under the
// memory-optimized KAISA placement only the owning rank holds a layer's
// running factors, which is why KFAC state lives in the checkpoint's
// per-rank sections rather than a shared one. The inverses are saved too:
// between update iterations Precondition applies the stored inverses, so
// a resumed step between refreshes must see identical second-order state.

type kfacLayerState struct {
	Initialized      bool
	AFactor, GFactor mat.DenseState
	AInv, GInv       mat.DenseState
}

type kfacPersist struct {
	Damping float64
	Layers  []kfacLayerState
}

// StateKey identifies KFAC's checkpoint section.
func (k *KFAC) StateKey() string { return "precond/kfac" }

// SaveState serializes this rank's running factors and inverses.
func (k *KFAC) SaveState() ([]byte, error) {
	st := kfacPersist{Damping: k.Damping, Layers: make([]kfacLayerState, len(k.state))}
	for i, s := range k.state {
		st.Layers[i] = kfacLayerState{
			Initialized: s.initialized,
			AFactor:     mat.CaptureDense(s.aFactor),
			GFactor:     mat.CaptureDense(s.gFactor),
			AInv:        mat.CaptureDense(s.aInv),
			GInv:        mat.CaptureDense(s.gInv),
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadState restores this rank's factors and inverses. The layer count
// must match the current network.
func (k *KFAC) LoadState(b []byte) error {
	var st kfacPersist
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if len(st.Layers) != len(k.state) {
		return fmt.Errorf("kfac: snapshot has %d layers, network has %d", len(st.Layers), len(k.state))
	}
	k.Damping = st.Damping
	for i, l := range st.Layers {
		s := k.state[i]
		s.initialized = l.Initialized
		s.aFactor = l.AFactor.Restore()
		s.gFactor = l.GFactor.Restore()
		s.aInv = l.AInv.Restore()
		s.gInv = l.GInv.Restore()
	}
	return nil
}
