// Package kfac implements the Kronecker-factored curvature baselines: KFAC
// (Martens & Grosse) with the KAISA-style distributed execution schedule
// (factor all-reduce, layer-assigned inversion, inverse broadcast), and
// EKFAC (George et al.), which rescales the Kronecker eigenbasis with a
// running diagonal second-moment estimate.
package kfac

import (
	"math"
	"strconv"
	"time"

	"repro/internal/dist"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/numerics"
	"repro/internal/telemetry"
)

// record closes out one schedule phase for one layer: the rank-0 Timeline
// keeps the four-bucket totals, and — when telemetry is on — every rank
// emits a span tagged optimizer/layer for the Chrome-trace lanes.
func record(tl *dist.Timeline, comm dist.Comm, optimizer, phase string, layer int, start time.Time) {
	dur := time.Since(start)
	if tl != nil && comm.ID() == 0 {
		tl.Add(phase, dur.Seconds())
	}
	if telemetry.Enabled() {
		telemetry.RecordSpan(phase, comm.ID(), dur,
			telemetry.Label{Key: "optimizer", Value: optimizer},
			telemetry.Label{Key: "layer", Value: strconv.Itoa(layer)})
	}
}

// KFAC approximates each layer's Fisher block inverse with the Kronecker
// product of inverted input/gradient covariances (Eq. 6 of the paper):
//
//	(F + αI)⁻¹ ≈ (AᵀA/m + γI)⁻¹ ⊗ (GᵀG/m + γI)⁻¹.
type KFAC struct {
	// Damping is the factor damping γ.
	Damping float64
	// Decay is the running-average coefficient for the factors.
	Decay float64
	// Strategy selects the KAISA placement mode (mem-opt, comm-opt, or
	// hybrid); the zero value is the memory-optimal schedule.
	Strategy Strategy
	// HybridBudgetBytes bounds the per-worker factor state kept
	// communication-optimally under StrategyHybrid.
	HybridBudgetBytes int
	// PiCorrection enables the Tikhonov π damping split between the two
	// Kronecker factors (Martens & Grosse §6.3).
	PiCorrection bool

	layers   []nn.KernelLayer
	comm     dist.Comm
	timeline *dist.Timeline
	state    []*kfacState
}

type kfacState struct {
	aFactor, gFactor *mat.Dense // running covariance estimates
	aInv, gInv       *mat.Dense
	initialized      bool

	// Persistent staging for the freshly computed factors (handed to the
	// communicator, so owned here rather than pooled).
	faBuf, fgBuf *mat.Dense
}

// NewKFAC builds a KFAC preconditioner over the network's kernel layers.
// comm may be dist.Local() for single-process runs. timeline is optional.
func NewKFAC(net *nn.Network, damping float64, comm dist.Comm, timeline *dist.Timeline) *KFAC {
	k := &KFAC{Damping: damping, Decay: 0.95, layers: net.KernelLayers(), comm: comm, timeline: timeline}
	k.state = make([]*kfacState, len(k.layers))
	for i, l := range k.layers {
		dIn, dOut := l.Dims()
		k.state[i] = &kfacState{
			aFactor: mat.NewDense(dIn, dIn),
			gFactor: mat.NewDense(dOut, dOut),
		}
	}
	return k
}

// Name implements opt.Preconditioner.
func (k *KFAC) Name() string { return "KFAC" }

// invertFactor is the degradation-aware damped inverse of one Kronecker
// factor: bounded Levenberg-Marquardt escalation first, then the diagonal
// (Jacobi) pseudo-inverse when no damping stabilizes the solve — the
// Kronecker product of diagonal inverses is still a usable (Adagrad-like)
// preconditioner. Retries and fallbacks are recorded under site.
func invertFactor(f *mat.Dense, gamma float64, site string) *mat.Dense {
	inv, _, retries, _, err := mat.InvSPDDampedChecked(f, gamma)
	if retries > 0 {
		numerics.AddRetries(site, retries)
	}
	if err == nil && inv.IsFinite() {
		return inv
	}
	reason := "factor inverse not finite"
	if err != nil {
		reason = err.Error()
	}
	numerics.RecordFallback(site, numerics.RungDiagonal, reason)
	return mat.DiagInvDamped(f, gamma)
}

func (k *KFAC) record(phase string, layer int, start time.Time) {
	record(k.timeline, k.comm, "kfac", phase, layer, start)
}

// Update implements opt.Preconditioner: recompute factors from the latest
// captures, all-reduce them, invert owned layers, broadcast inverses.
func (k *KFAC) Update() {
	p := k.comm.Size()
	for i, l := range k.layers {
		a, g := l.Capture()
		if a == nil {
			continue
		}
		m := float64(a.Rows() * p)
		st := k.state[i]

		// (2) Factor computation, staged in persistent workspaces.
		t0 := time.Now()
		st.faBuf = mat.EnsureDense(st.faBuf, a.Cols(), a.Cols())
		mat.GramTInto(st.faBuf, a)
		fa := st.faBuf.Scale(1 / m)
		st.fgBuf = mat.EnsureDense(st.fgBuf, g.Cols(), g.Cols())
		mat.GramTInto(st.fgBuf, g)
		fg := st.fgBuf.Scale(1 / m)
		k.record(dist.PhaseFactorize, i, t0)

		// (3) Factor all-reduce across workers (KAISA step 3).
		t0 = time.Now()
		fa = k.comm.AllReduceMat(fa)
		fg = k.comm.AllReduceMat(fg)
		k.record(dist.PhaseGather, i, t0)
		owner := i % p
		commOpt := k.layerCommOpt(i)
		// Memory-optimal layers keep the running factor state only on
		// their owner; comm-optimal layers keep it everywhere.
		keepFactors := commOpt || k.comm.ID() == owner
		if keepFactors {
			if !st.initialized {
				// Bootstrap the running average from the first observation.
				st.aFactor.CopyFrom(fa)
				st.gFactor.CopyFrom(fg)
				st.initialized = true
			} else {
				st.aFactor.Scale(k.Decay).AddScaled(fa, 1-k.Decay)
				st.gFactor.Scale(k.Decay).AddScaled(fg, 1-k.Decay)
			}
		}

		invert := func() (aInv, gInv *mat.Dense) {
			gA, gG := math.Sqrt(k.Damping), math.Sqrt(k.Damping)
			if k.PiCorrection {
				dIn, dOut := l.Dims()
				gA, gG = piCorrection(st.aFactor.Trace(), dIn, st.gFactor.Trace(), dOut, k.Damping)
			}
			return invertFactor(st.aFactor, gA, "kfac.A"), invertFactor(st.gFactor, gG, "kfac.G")
		}

		if commOpt {
			// (4') Communication-optimal: every worker inverts locally; no
			// inverse broadcast (KAISA's comm-opt placement).
			t0 = time.Now()
			st.aInv, st.gInv = invert()
			k.record(dist.PhaseInvert, i, t0)
			continue
		}

		// (4) Inversion on the owning worker.
		var aInv, gInv *mat.Dense
		if k.comm.ID() == owner {
			t0 = time.Now()
			aInv, gInv = invert()
			k.record(dist.PhaseInvert, i, t0)
		}

		// (5) Broadcast the inverses to everyone.
		t0 = time.Now()
		st.aInv = k.comm.BroadcastMat(owner, aInv)
		st.gInv = k.comm.BroadcastMat(owner, gInv)
		k.record(dist.PhaseBroadcast, i, t0)
	}
}

// Precondition implements opt.Preconditioner: grad ← A⁻¹ · grad · G⁻¹.
func (k *KFAC) Precondition() {
	for i, l := range k.layers {
		st := k.state[i]
		if st.aInv == nil {
			continue
		}
		w := l.Weight()
		rows, cols := w.Grad.Dims()
		tmp := mat.GetDense(rows, cols)
		mat.MulInto(tmp, w.Grad, st.gInv)
		mat.MulInto(w.Grad, st.aInv, tmp)
		mat.PutDense(tmp)
	}
}

// StateBytes implements opt.Preconditioner: the per-worker state actually
// held under the active strategy — inverses for every layer, plus running
// factors for the layers this worker stores them for (all layers under
// comm-opt, owned layers under mem-opt; Table IV's O(d²) storage).
func (k *KFAC) StateBytes() int {
	var n int
	for i, l := range k.layers {
		dIn, dOut := l.Dims()
		n += dIn*dIn + dOut*dOut // inverses
		if k.state[i].initialized {
			n += dIn*dIn + dOut*dOut // running factors
		}
	}
	return n * 8
}

// EKFAC refines KFAC by diagonally rescaling in the Kronecker eigenbasis:
// the factors are eigendecomposed and the per-coordinate curvature scale
// is tracked as a running average of the squared gradient projected into
// that basis (George et al., 2018).
type EKFAC struct {
	Damping float64
	Decay   float64

	layers   []nn.KernelLayer
	comm     dist.Comm
	timeline *dist.Timeline
	state    []*ekfacState
}

type ekfacState struct {
	aFactor, gFactor *mat.Dense
	qa, qg           *mat.Dense // eigenbases
	scale            *mat.Dense // running E[(Qaᵀ g Qg)²], dIn×dOut
	initialized      bool
	scaleInit        bool

	// Persistent staging for the freshly computed factors (handed to the
	// communicator, so owned here rather than pooled).
	faBuf, fgBuf *mat.Dense
}

// NewEKFAC builds an EKFAC preconditioner.
func NewEKFAC(net *nn.Network, damping float64, comm dist.Comm, timeline *dist.Timeline) *EKFAC {
	e := &EKFAC{Damping: damping, Decay: 0.95, layers: net.KernelLayers(), comm: comm, timeline: timeline}
	e.state = make([]*ekfacState, len(e.layers))
	for i, l := range e.layers {
		dIn, dOut := l.Dims()
		e.state[i] = &ekfacState{
			aFactor: mat.NewDense(dIn, dIn),
			gFactor: mat.NewDense(dOut, dOut),
			scale:   mat.NewDense(dIn, dOut),
		}
	}
	return e
}

// Name implements opt.Preconditioner.
func (e *EKFAC) Name() string { return "EKFAC" }

func (e *EKFAC) record(phase string, layer int, start time.Time) {
	record(e.timeline, e.comm, "ekfac", phase, layer, start)
}

// Update implements opt.Preconditioner.
func (e *EKFAC) Update() {
	p := e.comm.Size()
	for i, l := range e.layers {
		a, g := l.Capture()
		if a == nil {
			continue
		}
		m := float64(a.Rows() * p)
		st := e.state[i]

		t0 := time.Now()
		st.faBuf = mat.EnsureDense(st.faBuf, a.Cols(), a.Cols())
		mat.GramTInto(st.faBuf, a)
		fa := st.faBuf.Scale(1 / m)
		st.fgBuf = mat.EnsureDense(st.fgBuf, g.Cols(), g.Cols())
		mat.GramTInto(st.fgBuf, g)
		fg := st.fgBuf.Scale(1 / m)
		e.record(dist.PhaseFactorize, i, t0)

		t0 = time.Now()
		fa = e.comm.AllReduceMat(fa)
		fg = e.comm.AllReduceMat(fg)
		e.record(dist.PhaseGather, i, t0)
		if !st.initialized {
			st.aFactor.CopyFrom(fa)
			st.gFactor.CopyFrom(fg)
			st.initialized = true
		} else {
			st.aFactor.Scale(e.Decay).AddScaled(fa, 1-e.Decay)
			st.gFactor.Scale(e.Decay).AddScaled(fg, 1-e.Decay)
		}

		// Eigendecompositions on the owning worker (the expensive step
		// EKFAC adds over KFAC).
		owner := i % p
		var qa, qg *mat.Dense
		if e.comm.ID() == owner {
			t0 = time.Now()
			_, qa = mat.SymEig(st.aFactor)
			_, qg = mat.SymEig(st.gFactor)
			e.record(dist.PhaseInvert, i, t0)
		}
		t0 = time.Now()
		st.qa = e.comm.BroadcastMat(owner, qa)
		st.qg = e.comm.BroadcastMat(owner, qg)
		e.record(dist.PhaseBroadcast, i, t0)

		// Refresh the diagonal scale from the current gradient projected
		// into the eigenbasis (pooled scratch; sq = proj∘proj in place).
		w := l.Weight()
		rows, cols := w.Grad.Dims()
		tmp := mat.GetDense(rows, cols)
		mat.MulInto(tmp, w.Grad, st.qg)
		proj := mat.GetDense(rows, cols)
		mat.MulTAInto(proj, st.qa, tmp)
		mat.HadamardInto(proj, proj, proj)
		if !st.scaleInit {
			st.scale.CopyFrom(proj)
			st.scaleInit = true
		} else {
			st.scale.Scale(e.Decay).AddScaled(proj, 1-e.Decay)
		}
		mat.PutDense(tmp)
		mat.PutDense(proj)
	}
}

// Precondition implements opt.Preconditioner.
func (e *EKFAC) Precondition() {
	for i, l := range e.layers {
		st := e.state[i]
		if st.qa == nil {
			continue
		}
		w := l.Weight()
		rows, cols := w.Grad.Dims()
		tmp := mat.GetDense(rows, cols)
		mat.MulInto(tmp, w.Grad, st.qg)
		proj := mat.GetDense(rows, cols)
		mat.MulTAInto(proj, st.qa, tmp)
		pd, sd := proj.Data(), st.scale.Data()
		for j := range pd {
			pd[j] /= sd[j] + e.Damping
		}
		mat.MulTBInto(tmp, proj, st.qg)
		mat.MulInto(w.Grad, st.qa, tmp)
		mat.PutDense(tmp)
		mat.PutDense(proj)
	}
}

// StateBytes implements opt.Preconditioner.
func (e *EKFAC) StateBytes() int {
	var n int
	for _, l := range e.layers {
		dIn, dOut := l.Dims()
		n += 2*(dIn*dIn+dOut*dOut) + dIn*dOut
	}
	return n * 8
}
