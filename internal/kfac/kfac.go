// Package kfac implements the Kronecker-factored curvature baselines: KFAC
// (Martens & Grosse) with the KAISA-style distributed execution schedule
// (factor all-reduce, layer-assigned inversion, inverse broadcast), and
// EKFAC (George et al.), which rescales the Kronecker eigenbasis with a
// running diagonal second-moment estimate.
package kfac

import (
	"math"
	"strconv"
	"time"

	"repro/internal/dist"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/numerics"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// record closes out one schedule phase for one layer: the rank-0 Timeline
// keeps the four-bucket totals, and — when telemetry is on — every rank
// emits a span tagged optimizer/layer for the Chrome-trace lanes.
func record(tl *dist.Timeline, comm dist.Comm, optimizer, phase string, layer int, start time.Time) {
	recordDur(tl, comm, optimizer, phase, layer, time.Since(start))
}

// recordDur is record for phases whose duration was measured elsewhere —
// async collective futures report their own execution time, which is what
// the communication buckets should contain rather than the near-zero
// submission time.
func recordDur(tl *dist.Timeline, comm dist.Comm, optimizer, phase string, layer int, dur time.Duration) {
	if tl != nil && comm.ID() == 0 {
		tl.Add(phase, dur.Seconds())
	}
	if telemetry.Enabled() {
		telemetry.RecordSpan(phase, comm.ID(), dur,
			telemetry.Label{Key: "optimizer", Value: optimizer},
			telemetry.Label{Key: "layer", Value: strconv.Itoa(layer)})
	}
}

// KFAC approximates each layer's Fisher block inverse with the Kronecker
// product of inverted input/gradient covariances (Eq. 6 of the paper):
//
//	(F + αI)⁻¹ ≈ (AᵀA/m + γI)⁻¹ ⊗ (GᵀG/m + γI)⁻¹.
type KFAC struct {
	// Damping is the factor damping γ.
	Damping float64
	// Decay is the running-average coefficient for the factors.
	Decay float64
	// Strategy selects the KAISA placement mode (mem-opt, comm-opt, or
	// hybrid); the zero value is the memory-optimal schedule.
	Strategy Strategy
	// HybridBudgetBytes bounds the per-worker factor state kept
	// communication-optimally under StrategyHybrid.
	HybridBudgetBytes int
	// PiCorrection enables the Tikhonov π damping split between the two
	// Kronecker factors (Martens & Grosse §6.3).
	PiCorrection bool

	layers   []nn.KernelLayer
	comm     dist.Comm
	async    *dist.AsyncComm
	timeline *dist.Timeline
	state    []*kfacState

	// Layer-parallel execution (internal/sched): see the HyLo counterpart.
	plans      []kfacPlan
	stages     []sched.Stage
	eng        sched.Engine
	precStages []sched.Stage
	precEng    sched.Engine
}

type kfacState struct {
	aFactor, gFactor *mat.Dense // running covariance estimates
	aInv, gInv       *mat.Dense
	initialized      bool

	// Persistent staging for the freshly computed factors (handed to the
	// communicator, so owned here rather than pooled).
	faBuf, fgBuf *mat.Dense
}

// kfacPlan is one layer's slot in the scheduled pipeline; it persists
// across updates so the embedded futures are reused allocation-free.
type kfacPlan struct {
	layer, owner int
	l            nn.KernelLayer
	st           *kfacState
	m            float64
	commOpt      bool

	a, g       *mat.Dense // this step's captures
	fa, fg     *mat.Dense // all-reduced factors
	aF, gF     dist.MatFuture
	aInv, gInv *mat.Dense // owner's inverses headed for broadcast
	aBF, gBF   dist.MatFuture
}

// NewKFAC builds a KFAC preconditioner over the network's kernel layers.
// comm may be dist.Local() for single-process runs. timeline is optional.
func NewKFAC(net *nn.Network, damping float64, comm dist.Comm, timeline *dist.Timeline) *KFAC {
	k := &KFAC{Damping: damping, Decay: 0.95, layers: net.KernelLayers(), comm: comm, timeline: timeline}
	k.state = make([]*kfacState, len(k.layers))
	for i, l := range k.layers {
		dIn, dOut := l.Dims()
		k.state[i] = &kfacState{
			aFactor: mat.NewDense(dIn, dIn),
			gFactor: mat.NewDense(dOut, dOut),
		}
	}
	return k
}

// Name implements opt.Preconditioner.
func (k *KFAC) Name() string { return "KFAC" }

// invertFactor is the degradation-aware damped inverse of one Kronecker
// factor: bounded Levenberg-Marquardt escalation first, then the diagonal
// (Jacobi) pseudo-inverse when no damping stabilizes the solve — the
// Kronecker product of diagonal inverses is still a usable (Adagrad-like)
// preconditioner. Retries and fallbacks are recorded under site.
func invertFactor(f *mat.Dense, gamma float64, site string) *mat.Dense {
	inv, _, retries, _, err := mat.InvSPDDampedChecked(f, gamma)
	if retries > 0 {
		numerics.AddRetries(site, retries)
	}
	if err == nil && inv.IsFinite() {
		return inv
	}
	reason := "factor inverse not finite"
	if err != nil {
		reason = err.Error()
	}
	numerics.RecordFallback(site, numerics.RungDiagonal, reason)
	return mat.DiagInvDamped(f, gamma)
}

func (k *KFAC) record(phase string, layer int, start time.Time) {
	record(k.timeline, k.comm, "kfac", phase, layer, start)
}

func (k *KFAC) recordDur(phase string, layer int, dur time.Duration) {
	recordDur(k.timeline, k.comm, "kfac", phase, layer, dur)
}

// ensureStages builds the pipeline definition once; its closures index
// k.plans.
func (k *KFAC) ensureStages() {
	if k.stages != nil {
		return
	}
	k.stages = []sched.Stage{
		{Name: "factorize", Fn: k.stageFactorize},
		{Name: "reduce", Comm: true, Fn: k.stageReduce},
		{Name: "invert", Wait: k.waitReduce, Fn: k.stageInvert},
		{Name: "broadcast", Comm: true, Fn: k.stageBroadcast},
		{Name: "store", Wait: k.waitBroadcast, Fn: k.stageStore},
	}
}

// Update implements opt.Preconditioner: recompute factors from the latest
// captures, all-reduce them, invert owned layers, broadcast inverses —
// executed as a scheduled pipeline so one layer's factor all-reduce is in
// flight while the next layer still computes its Gram factors.
func (k *KFAC) Update() {
	p := k.comm.Size()
	if k.async == nil {
		k.async = dist.Async(k.comm)
	}
	k.ensureStages()
	k.plans = k.plans[:0]
	for i, l := range k.layers {
		a, g := l.Capture()
		if a == nil {
			continue
		}
		k.plans = append(k.plans, kfacPlan{
			layer: i, owner: i % p, l: l, st: k.state[i],
			m: float64(a.Rows() * p), commOpt: k.layerCommOpt(i),
			a: a, g: g,
		})
	}
	sched.Run(&k.eng, len(k.plans), k.stages)
}

// stageFactorize computes this step's factors, staged in persistent
// workspaces (KAISA step 2).
func (k *KFAC) stageFactorize(i int) {
	pl := &k.plans[i]
	st := pl.st
	t0 := time.Now()
	st.faBuf = mat.EnsureDense(st.faBuf, pl.a.Cols(), pl.a.Cols())
	mat.GramTInto(st.faBuf, pl.a)
	st.faBuf.Scale(1 / pl.m)
	st.fgBuf = mat.EnsureDense(st.fgBuf, pl.g.Cols(), pl.g.Cols())
	mat.GramTInto(st.fgBuf, pl.g)
	st.fgBuf.Scale(1 / pl.m)
	k.record(dist.PhaseFactorize, pl.layer, t0)
}

// stageReduce submits the factor all-reduces (KAISA step 3).
func (k *KFAC) stageReduce(i int) {
	pl := &k.plans[i]
	k.async.StartAllReduceMat(&pl.aF, pl.st.faBuf)
	k.async.StartAllReduceMat(&pl.gF, pl.st.fgBuf)
}

func (k *KFAC) waitReduce(i int) {
	pl := &k.plans[i]
	pl.fa = pl.aF.Wait()
	pl.fg = pl.gF.Wait()
}

// stageInvert folds the reduced factors into the running averages held by
// this rank and inverts where the placement strategy says to (KAISA step 4).
func (k *KFAC) stageInvert(i int) {
	pl := &k.plans[i]
	st := pl.st
	k.recordDur(dist.PhaseGather, pl.layer, pl.aF.Dur()+pl.gF.Dur())
	// Memory-optimal layers keep the running factor state only on
	// their owner; comm-optimal layers keep it everywhere.
	keepFactors := pl.commOpt || k.comm.ID() == pl.owner
	if keepFactors {
		if !st.initialized {
			// Bootstrap the running average from the first observation.
			st.aFactor.CopyFrom(pl.fa)
			st.gFactor.CopyFrom(pl.fg)
			st.initialized = true
		} else {
			st.aFactor.Scale(k.Decay).AddScaled(pl.fa, 1-k.Decay)
			st.gFactor.Scale(k.Decay).AddScaled(pl.fg, 1-k.Decay)
		}
	}
	if pl.commOpt {
		// (4') Communication-optimal: every worker inverts locally; no
		// inverse broadcast (KAISA's comm-opt placement).
		t0 := time.Now()
		st.aInv, st.gInv = k.invertPair(pl.l, st)
		k.record(dist.PhaseInvert, pl.layer, t0)
		return
	}
	pl.aInv, pl.gInv = nil, nil
	if k.comm.ID() == pl.owner {
		t0 := time.Now()
		pl.aInv, pl.gInv = k.invertPair(pl.l, st)
		k.record(dist.PhaseInvert, pl.layer, t0)
	}
}

// invertPair inverts both Kronecker factors with optional π damping split.
func (k *KFAC) invertPair(l nn.KernelLayer, st *kfacState) (aInv, gInv *mat.Dense) {
	gA, gG := math.Sqrt(k.Damping), math.Sqrt(k.Damping)
	if k.PiCorrection {
		dIn, dOut := l.Dims()
		gA, gG = piCorrection(st.aFactor.Trace(), dIn, st.gFactor.Trace(), dOut, k.Damping)
	}
	return invertFactor(st.aFactor, gA, "kfac.A"), invertFactor(st.gFactor, gG, "kfac.G")
}

// stageBroadcast submits the inverse broadcasts (KAISA step 5).
// Comm-optimal layers submit nothing — layerCommOpt is rank-independent,
// so every rank skips the same layers and the canonical collective
// sequence stays matched.
func (k *KFAC) stageBroadcast(i int) {
	pl := &k.plans[i]
	if pl.commOpt {
		return
	}
	k.async.StartBroadcastMat(&pl.aBF, pl.owner, pl.aInv)
	k.async.StartBroadcastMat(&pl.gBF, pl.owner, pl.gInv)
}

func (k *KFAC) waitBroadcast(i int) {
	pl := &k.plans[i]
	if pl.commOpt {
		return
	}
	pl.st.aInv = pl.aBF.Wait()
	pl.st.gInv = pl.gBF.Wait()
}

func (k *KFAC) stageStore(i int) {
	pl := &k.plans[i]
	if pl.commOpt {
		return
	}
	k.recordDur(dist.PhaseBroadcast, pl.layer, pl.aBF.Dur()+pl.gBF.Dur())
}

// Precondition implements opt.Preconditioner: grad ← A⁻¹ · grad · G⁻¹.
// The layers are independent, so they run through the scheduler as a
// single compute stage.
func (k *KFAC) Precondition() {
	if k.precStages == nil {
		k.precStages = []sched.Stage{{Name: "precondition", Fn: k.stagePrecondition}}
	}
	sched.Run(&k.precEng, len(k.layers), k.precStages)
}

func (k *KFAC) stagePrecondition(i int) {
	st := k.state[i]
	if st.aInv == nil {
		return
	}
	w := k.layers[i].Weight()
	rows, cols := w.Grad.Dims()
	tmp := mat.GetDense(rows, cols)
	mat.MulInto(tmp, w.Grad, st.gInv)
	mat.MulInto(w.Grad, st.aInv, tmp)
	mat.PutDense(tmp)
}

// StateBytes implements opt.Preconditioner: the per-worker state actually
// held under the active strategy — inverses for every layer, plus running
// factors for the layers this worker stores them for (all layers under
// comm-opt, owned layers under mem-opt; Table IV's O(d²) storage).
func (k *KFAC) StateBytes() int {
	var n int
	for i, l := range k.layers {
		dIn, dOut := l.Dims()
		n += dIn*dIn + dOut*dOut // inverses
		if k.state[i].initialized {
			n += dIn*dIn + dOut*dOut // running factors
		}
	}
	return n * 8
}

// EKFAC refines KFAC by diagonally rescaling in the Kronecker eigenbasis:
// the factors are eigendecomposed and the per-coordinate curvature scale
// is tracked as a running average of the squared gradient projected into
// that basis (George et al., 2018).
type EKFAC struct {
	Damping float64
	Decay   float64

	layers   []nn.KernelLayer
	comm     dist.Comm
	timeline *dist.Timeline
	state    []*ekfacState
}

type ekfacState struct {
	aFactor, gFactor *mat.Dense
	qa, qg           *mat.Dense // eigenbases
	scale            *mat.Dense // running E[(Qaᵀ g Qg)²], dIn×dOut
	initialized      bool
	scaleInit        bool

	// Persistent staging for the freshly computed factors (handed to the
	// communicator, so owned here rather than pooled).
	faBuf, fgBuf *mat.Dense
}

// NewEKFAC builds an EKFAC preconditioner.
func NewEKFAC(net *nn.Network, damping float64, comm dist.Comm, timeline *dist.Timeline) *EKFAC {
	e := &EKFAC{Damping: damping, Decay: 0.95, layers: net.KernelLayers(), comm: comm, timeline: timeline}
	e.state = make([]*ekfacState, len(e.layers))
	for i, l := range e.layers {
		dIn, dOut := l.Dims()
		e.state[i] = &ekfacState{
			aFactor: mat.NewDense(dIn, dIn),
			gFactor: mat.NewDense(dOut, dOut),
			scale:   mat.NewDense(dIn, dOut),
		}
	}
	return e
}

// Name implements opt.Preconditioner.
func (e *EKFAC) Name() string { return "EKFAC" }

func (e *EKFAC) record(phase string, layer int, start time.Time) {
	record(e.timeline, e.comm, "ekfac", phase, layer, start)
}

// Update implements opt.Preconditioner.
func (e *EKFAC) Update() {
	p := e.comm.Size()
	for i, l := range e.layers {
		a, g := l.Capture()
		if a == nil {
			continue
		}
		m := float64(a.Rows() * p)
		st := e.state[i]

		t0 := time.Now()
		st.faBuf = mat.EnsureDense(st.faBuf, a.Cols(), a.Cols())
		mat.GramTInto(st.faBuf, a)
		fa := st.faBuf.Scale(1 / m)
		st.fgBuf = mat.EnsureDense(st.fgBuf, g.Cols(), g.Cols())
		mat.GramTInto(st.fgBuf, g)
		fg := st.fgBuf.Scale(1 / m)
		e.record(dist.PhaseFactorize, i, t0)

		t0 = time.Now()
		fa = e.comm.AllReduceMat(fa)
		fg = e.comm.AllReduceMat(fg)
		e.record(dist.PhaseGather, i, t0)
		if !st.initialized {
			st.aFactor.CopyFrom(fa)
			st.gFactor.CopyFrom(fg)
			st.initialized = true
		} else {
			st.aFactor.Scale(e.Decay).AddScaled(fa, 1-e.Decay)
			st.gFactor.Scale(e.Decay).AddScaled(fg, 1-e.Decay)
		}

		// Eigendecompositions on the owning worker (the expensive step
		// EKFAC adds over KFAC).
		owner := i % p
		var qa, qg *mat.Dense
		if e.comm.ID() == owner {
			t0 = time.Now()
			_, qa = mat.SymEig(st.aFactor)
			_, qg = mat.SymEig(st.gFactor)
			e.record(dist.PhaseInvert, i, t0)
		}
		t0 = time.Now()
		st.qa = e.comm.BroadcastMat(owner, qa)
		st.qg = e.comm.BroadcastMat(owner, qg)
		e.record(dist.PhaseBroadcast, i, t0)

		// Refresh the diagonal scale from the current gradient projected
		// into the eigenbasis (pooled scratch; sq = proj∘proj in place).
		w := l.Weight()
		rows, cols := w.Grad.Dims()
		tmp := mat.GetDense(rows, cols)
		mat.MulInto(tmp, w.Grad, st.qg)
		proj := mat.GetDense(rows, cols)
		mat.MulTAInto(proj, st.qa, tmp)
		mat.HadamardInto(proj, proj, proj)
		if !st.scaleInit {
			st.scale.CopyFrom(proj)
			st.scaleInit = true
		} else {
			st.scale.Scale(e.Decay).AddScaled(proj, 1-e.Decay)
		}
		mat.PutDense(tmp)
		mat.PutDense(proj)
	}
}

// Precondition implements opt.Preconditioner.
func (e *EKFAC) Precondition() {
	for i, l := range e.layers {
		st := e.state[i]
		if st.qa == nil {
			continue
		}
		w := l.Weight()
		rows, cols := w.Grad.Dims()
		tmp := mat.GetDense(rows, cols)
		mat.MulInto(tmp, w.Grad, st.qg)
		proj := mat.GetDense(rows, cols)
		mat.MulTAInto(proj, st.qa, tmp)
		pd, sd := proj.Data(), st.scale.Data()
		for j := range pd {
			pd[j] /= sd[j] + e.Damping
		}
		mat.MulTBInto(tmp, proj, st.qg)
		mat.MulInto(w.Grad, st.qa, tmp)
		mat.PutDense(tmp)
		mat.PutDense(proj)
	}
}

// StateBytes implements opt.Preconditioner.
func (e *EKFAC) StateBytes() int {
	var n int
	for _, l := range e.layers {
		dIn, dOut := l.Dims()
		n += 2*(dIn*dIn+dOut*dOut) + dIn*dOut
	}
	return n * 8
}
