# Convenience targets for the HyLo reproduction.

GO ?= go

.PHONY: all build test race racesched serve-smoke servecrash vet cover chaos netchaos fuzzsmoke sketchsmoke bench benchfast bench-tables experiments report examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mat/ ./internal/dist/ ./internal/nn/ ./internal/train/ ./internal/core/ ./internal/sngd/ ./internal/kfac/ ./internal/telemetry/ ./internal/sched/

# Scheduler-focused race suite: the execution engine and token pool, the
# async collectives they drive, and the cross-optimizer parity tests that
# prove the layer-parallel path is bit-identical to -sched-workers=1.
racesched:
	$(GO) test -race ./internal/sched/ -count=1
	$(GO) test -race ./internal/dist/ -run 'TestAsync|TestLocalCommInPlace' -count=1
	$(GO) test -race ./internal/train/ -run 'TestElasticRecoveryWithParallelScheduler' -count=1

# End-to-end smoke of the hylo-serve daemon: boot the binary, submit a
# 2-epoch job over HTTP, assert completion and a non-empty /metrics, then
# drain via SIGTERM. The in-process HTTP tests live in internal/serve.
serve-smoke:
	./scripts/serve_smoke.sh

# Crash-recovery acceptance under the race detector: SIGKILL a real
# hylo-serve daemon mid-job, restart it over the same data directory, and
# require the resumed run to finish bit-identical to an uninterrupted
# reference. The helper-process body must be runnable too, so both test
# names are in scope.
servecrash:
	$(GO) test -race ./internal/serve/ -run 'TestServeCrashRecovery|TestServeCrashHelperProcess' -count=1 -timeout 600s

vet:
	$(GO) vet ./...

# Fault-injection and recovery suite under the race detector: checkpoint
# round-trips, injected worker panics recovered via RunElastic, corrupted
# snapshots falling back, the barrier watchdog, and chaos determinism.
chaos:
	$(GO) test -race ./internal/ckpt/ -count=1
	$(GO) test -race ./internal/dist/ -run 'TestFaultInjector|TestBarrierWatchdog|TestClusterReset|TestAsWorker|TestFaultPlan|TestAsync' -count=1
	$(GO) test -race ./internal/train/ -run 'TestElastic|TestNonfinite|TestSharding' -count=1
	$(GO) test -race ./internal/core/ -run 'TestPreconditionRobust|TestSingularKernel|TestDegenerate' -count=1
	$(GO) test -race ./internal/sched/ -run 'TestSchedParityChaos' -count=1

# TCP-transport chaos suite under the race detector: the frame codec and
# socket fault injector, multi-process collectives over real loopback
# sockets (parity with the in-process cluster, shrink-then-rejoin,
# rendezvous rejection), and the two-OS-process acceptance tests — bit
# parity for every optimizer with 10% socket drop/dup/reorder faults, and a
# mid-epoch process kill recovering onto P-1 ranks.
netchaos:
	$(GO) test -race ./internal/dist/net/ -count=1
	$(GO) test -race ./internal/train/ -run 'TestNetProc' -count=1 -timeout 600s

# Short fuzz pass over the panic-free solver kernels: each target runs for a
# few seconds, enough for CI to catch a reintroduced solve-path panic or an
# unbounded retry loop without a dedicated fuzzing fleet.
FUZZTIME ?= 5s
fuzzsmoke:
	$(GO) test ./internal/mat/ -run '^$$' -fuzz '^FuzzFactorLU$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mat/ -run '^$$' -fuzz '^FuzzQRPivot$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mat/ -run '^$$' -fuzz '^FuzzInvSPD$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mat/ -run '^$$' -fuzz '^FuzzInterpolativeDecomp$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mat/ -run '^$$' -fuzz '^FuzzCholeskySolve$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mat/ -run '^$$' -fuzz '^FuzzRandomizedID$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dist/net/ -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dist/net/ -run '^$$' -fuzz '^FuzzChunkReassembly$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve/runner/ -run '^$$' -fuzz '^FuzzJournalDecode$$' -fuzztime $(FUZZTIME)

# Sketched-KID smoke: the randomized-ID fast path end to end — mat/core
# sketch kernels and guards, bit-parity (including the forced exact-KID
# fallback) across scheduler widths, and one real sketched training run per
# mode through the hylo-train CLI.
sketchsmoke:
	$(GO) test ./internal/mat/ -run 'TestRandomizedID|TestSRHT|TestFWHT' -count=1
	$(GO) test ./internal/core/ -run 'Sketch' -count=1
	$(GO) test -race ./internal/sched/ -run 'TestSchedParity$$/hylo-kid-sketch|TestSchedParitySketchFallback' -count=1
	$(GO) run ./cmd/hylo-train -model mlp -epochs 1 -batch 16 -samples 32 -kid-sketch gauss -optimizer hylo
	$(GO) run ./cmd/hylo-train -model mlp -epochs 1 -batch 16 -samples 32 -kid-sketch srht -optimizer hylo

cover:
	$(GO) test -cover ./internal/...

# Root benchmarks: one testing.B benchmark per paper table/figure.
bench:
	$(GO) test -bench=. -benchmem

# One-iteration allocation smoke: runs every benchmark once with -benchmem
# so CI catches allocation regressions on the hot path without paying for a
# full timing run. Compare allocs/op against BENCH_baseline.json.
benchfast:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem .
	$(GO) test -run='^$$' -bench='BenchmarkGEMM_512|BenchmarkWorkspacePool' -benchtime=1x -benchmem ./internal/mat/

# Full experiment suite as text tables (minutes).
experiments:
	$(GO) run ./cmd/hylo-bench -exp all

# Markdown reproduction report with accuracy sparklines.
report:
	$(GO) run ./cmd/hylo-report -o report.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cnn_classification
	$(GO) run ./examples/segmentation
	$(GO) run ./examples/distributed
	$(GO) run ./examples/checkpointing
	$(GO) run ./examples/vit_attention

clean:
	$(GO) clean ./...
	rm -f report.md test_output.txt bench_output.txt
