package repro

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/sched"
)

// benchWorkers pins the scheduler worker count for one benchmark and
// restores it afterwards, so the sequential baselines stay sequential even
// when the suite runs on a many-core box.
func benchWorkers(b *testing.B, n int) {
	b.Helper()
	prev := sched.Workers()
	sched.SetWorkers(n)
	b.Cleanup(func() { sched.SetWorkers(prev) })
}

// benchHyLoCNNStep measures one full HyLo training step — forward,
// backward, preconditioner Update (KID) and Precondition, SGD step — on a
// small CNN, with the given scheduler worker count.
func benchHyLoCNNStep(b *testing.B, workers int) {
	benchWorkers(b, workers)
	rng := mat.NewRNG(11)
	in := nn.Shape{C: 3, H: 16, W: 16}
	net := nn.NewNetwork(in, rng,
		nn.NewConv2d(8, 3, 1, 1),
		nn.NewBatchNorm2d(),
		nn.NewReLU(),
		nn.NewConv2d(16, 3, 2, 1),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewLinear(10),
	)
	const m = 32
	x := mat.RandN(rng, m, in.Numel(), 1)
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % 10
	}
	tgt := nn.Target{Labels: labels}
	loss := nn.SoftmaxCrossEntropy{}
	pre := core.NewHyLo(net, 0.03, 0.1, dist.Local(), nil, mat.NewRNG(5))
	pre.Policy = core.FixedSwitch{Mode: core.ModeKID}
	sgd := opt.NewSGD(net.Params(), 0.01, 0.9, 0)
	pre.OnEpochStart(0, false)
	net.SetCapture(true)

	step := func() {
		net.ZeroGrad()
		out := net.Forward(x, true)
		_, g := loss.Forward(out, tgt)
		net.Backward(g)
		pre.Update()
		pre.Precondition()
		sgd.Step()
	}
	step() // warm up layer workspaces so b.N measures the steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkHyLoStep is the sequential (-sched-workers=1) CNN step. Its
// allocs/op is the acceptance metric for the zero-steady-state-allocation
// hot path: after the pooled-workspace conversion the steady state should
// allocate an order of magnitude less than the seed implementation.
func BenchmarkHyLoStep(b *testing.B) { benchHyLoCNNStep(b, 1) }

// BenchmarkHyLoStepParallel is the same step with the layer-parallel
// scheduler at full width. Compare against BenchmarkHyLoStep; the two are
// bit-identical in output (see internal/sched parity tests), so any delta
// is pure scheduling overhead or overlap win.
func BenchmarkHyLoStepParallel(b *testing.B) { benchHyLoCNNStep(b, runtime.GOMAXPROCS(0)) }

// BenchmarkHyLoStepKIS is the same step with the cheap KIS reduction.
func BenchmarkHyLoStepKIS(b *testing.B) {
	rng := mat.NewRNG(11)
	in := nn.Shape{C: 3, H: 16, W: 16}
	net := nn.NewNetwork(in, rng,
		nn.NewConv2d(8, 3, 1, 1),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewLinear(10),
	)
	const m = 32
	x := mat.RandN(rng, m, in.Numel(), 1)
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % 10
	}
	tgt := nn.Target{Labels: labels}
	loss := nn.SoftmaxCrossEntropy{}
	pre := core.NewHyLo(net, 0.03, 0.1, dist.Local(), nil, mat.NewRNG(5))
	pre.Policy = core.FixedSwitch{Mode: core.ModeKIS}
	sgd := opt.NewSGD(net.Params(), 0.01, 0.9, 0)
	pre.OnEpochStart(0, false)
	net.SetCapture(true)

	step := func() {
		net.ZeroGrad()
		out := net.Forward(x, true)
		_, g := loss.Forward(out, tgt)
		net.Backward(g)
		pre.Update()
		pre.Precondition()
		sgd.Step()
	}
	step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// benchHyLoDeepStep measures one HyLo-KID step on a deep MLP — eight
// 256-wide kernel layers, the shape where layer-parallel scheduling has
// real work to overlap: while one layer's reduced kernel is being solved,
// the next layer's factorization runs on another worker.
func benchHyLoDeepStep(b *testing.B, workers int) {
	benchWorkers(b, workers)
	rng := mat.NewRNG(17)
	const width, m, classes = 256, 64, 10
	var layers []nn.Layer
	for i := 0; i < 7; i++ {
		layers = append(layers, nn.NewLinear(width), nn.NewReLU())
	}
	layers = append(layers, nn.NewLinear(classes))
	net := nn.NewNetwork(nn.Vec(width), rng, layers...)
	x := mat.RandN(rng, m, width, 1)
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % classes
	}
	tgt := nn.Target{Labels: labels}
	loss := nn.SoftmaxCrossEntropy{}
	pre := core.NewHyLo(net, 0.03, 0.25, dist.Local(), nil, mat.NewRNG(5))
	pre.Policy = core.FixedSwitch{Mode: core.ModeKID}
	sgd := opt.NewSGD(net.Params(), 0.01, 0.9, 0)
	pre.OnEpochStart(0, false)
	net.SetCapture(true)

	step := func() {
		net.ZeroGrad()
		out := net.Forward(x, true)
		_, g := loss.Forward(out, tgt)
		net.Backward(g)
		pre.Update()
		pre.Precondition()
		sgd.Step()
	}
	step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkHyLoStepDeep is the sequential baseline for the deep-MLP step.
func BenchmarkHyLoStepDeep(b *testing.B) { benchHyLoDeepStep(b, 1) }

// BenchmarkHyLoStepDeepParallel is the layer-parallel deep-MLP step — the
// headline comm/compute-overlap benchmark. On a box with GOMAXPROCS ≥ 4
// it should beat BenchmarkHyLoStepDeep by ≥ 1.8×; on a single core the
// scheduler's inline fallback keeps it at parity.
func BenchmarkHyLoStepDeepParallel(b *testing.B) { benchHyLoDeepStep(b, runtime.GOMAXPROCS(0)) }

// benchHyLoSketchStep measures one HyLo-KID step on a single wide kernel
// layer with an m=512 batch — the regime where the interpolative
// decomposition of the 512×512 Gram kernel dominates the step — under the
// selected sketch mode (SketchOff = exact pivoted-QR ID).
func benchHyLoSketchStep(b *testing.B, sk core.Sketch) {
	benchWorkers(b, 1)
	rng := mat.NewRNG(23)
	const width, m, classes = 64, 512, 10
	net := nn.NewNetwork(nn.Vec(width), rng, nn.NewLinear(classes))
	x := mat.RandN(rng, m, width, 1)
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % classes
	}
	tgt := nn.Target{Labels: labels}
	loss := nn.SoftmaxCrossEntropy{}
	pre := core.NewHyLo(net, 0.03, 0.1, dist.Local(), nil, mat.NewRNG(5))
	pre.Policy = core.FixedSwitch{Mode: core.ModeKID}
	pre.Sketch = sk
	sgd := opt.NewSGD(net.Params(), 0.01, 0.9, 0)
	pre.OnEpochStart(0, false)
	net.SetCapture(true)

	step := func() {
		net.ZeroGrad()
		out := net.Forward(x, true)
		_, g := loss.Forward(out, tgt)
		net.Backward(g)
		pre.Update()
		pre.Precondition()
		sgd.Step()
	}
	step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkHyLoStepSketch compares the KID factorization backends on the
// large-batch step. The acceptance bar for this optimization: srht beats
// exact by ≥ 1.5× at ≤ 40 allocs/op (recorded in BENCH_baseline.json's
// kid_sketch section).
func BenchmarkHyLoStepSketch(b *testing.B) {
	for _, v := range []struct {
		name string
		sk   core.Sketch
	}{{"exact", core.SketchOff}, {"gauss", core.SketchGauss}, {"srht", core.SketchSRHT}} {
		v := v
		b.Run(v.name, func(b *testing.B) { benchHyLoSketchStep(b, v.sk) })
	}
}
