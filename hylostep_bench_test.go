package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/opt"
)

// BenchmarkHyLoStep measures one full HyLo training step — forward,
// backward, preconditioner Update (KID) and Precondition, SGD step — on a
// small CNN. Its allocs/op is the acceptance metric for the
// zero-steady-state-allocation hot path: after the pooled-workspace
// conversion the steady state should allocate an order of magnitude less
// than the seed implementation.
func BenchmarkHyLoStep(b *testing.B) {
	rng := mat.NewRNG(11)
	in := nn.Shape{C: 3, H: 16, W: 16}
	net := nn.NewNetwork(in, rng,
		nn.NewConv2d(8, 3, 1, 1),
		nn.NewBatchNorm2d(),
		nn.NewReLU(),
		nn.NewConv2d(16, 3, 2, 1),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewLinear(10),
	)
	const m = 32
	x := mat.RandN(rng, m, in.Numel(), 1)
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % 10
	}
	tgt := nn.Target{Labels: labels}
	loss := nn.SoftmaxCrossEntropy{}
	pre := core.NewHyLo(net, 0.03, 0.1, dist.Local(), nil, mat.NewRNG(5))
	pre.Policy = core.FixedSwitch{Mode: core.ModeKID}
	sgd := opt.NewSGD(net.Params(), 0.01, 0.9, 0)
	pre.OnEpochStart(0, false)
	net.SetCapture(true)

	step := func() {
		net.ZeroGrad()
		out := net.Forward(x, true)
		_, g := loss.Forward(out, tgt)
		net.Backward(g)
		pre.Update()
		pre.Precondition()
		sgd.Step()
	}
	step() // warm up layer workspaces so b.N measures the steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkHyLoStepKIS is the same step with the cheap KIS reduction.
func BenchmarkHyLoStepKIS(b *testing.B) {
	rng := mat.NewRNG(11)
	in := nn.Shape{C: 3, H: 16, W: 16}
	net := nn.NewNetwork(in, rng,
		nn.NewConv2d(8, 3, 1, 1),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewLinear(10),
	)
	const m = 32
	x := mat.RandN(rng, m, in.Numel(), 1)
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % 10
	}
	tgt := nn.Target{Labels: labels}
	loss := nn.SoftmaxCrossEntropy{}
	pre := core.NewHyLo(net, 0.03, 0.1, dist.Local(), nil, mat.NewRNG(5))
	pre.Policy = core.FixedSwitch{Mode: core.ModeKIS}
	sgd := opt.NewSGD(net.Params(), 0.01, 0.9, 0)
	pre.OnEpochStart(0, false)
	net.SetCapture(true)

	step := func() {
		net.ZeroGrad()
		out := net.Forward(x, true)
		_, g := loss.Forward(out, tgt)
		net.Backward(g)
		pre.Update()
		pre.Precondition()
		sgd.Step()
	}
	step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
