// CNN classification: train the paper's 3C1F architecture on a synthetic
// Fashion-MNIST stand-in and compare all six optimizers of Fig. 4 (HyLo,
// KFAC, EKFAC, KBFGS-L, SGD, ADAM) head-to-head. This exercises the CNN
// extension of SNGD (Sec. IV): conv layers expose spatially-summed
// per-sample factors that HyLo consumes exactly like FC layers.
//
//	go run ./examples/cnn_classification
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/kbfgs"
	"repro/internal/kfac"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/train"
)

func main() {
	shape := nn.Shape{C: 1, H: 16, W: 16}
	ds := data.SynthImages(mat.NewRNG(3), data.ClassSpec{
		Classes: 6, PerClass: 60, Shape: shape, Noise: 0.3})
	trainSet, testSet := data.Split(mat.NewRNG(4), ds, 0.25)

	build := func(rng *mat.RNG) *nn.Network {
		return models.ThreeC1F(shape, 8, 6, rng)
	}
	cfg := train.Config{
		Epochs: 8, BatchSize: 32,
		LR:       opt.LRSchedule{Base: 0.03, DecayAt: []int{6}, Gamma: 0.1},
		Momentum: 0.9, UpdateFreq: 5, Damping: 0.1, Seed: 7,
	}

	methods := []struct {
		name string
		adam bool
		pre  train.PrecondFactory
	}{
		{"HyLo", false, func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
			return core.NewHyLo(net, 0.1, 0.1, c, tl, rng)
		}},
		{"KFAC", false, func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
			return kfac.NewKFAC(net, 0.1, c, tl)
		}},
		{"EKFAC", false, func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
			return kfac.NewEKFAC(net, 0.1, c, tl)
		}},
		{"KBFGS-L", false, func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
			return kbfgs.NewKBFGSL(net, 0.01, 10)
		}},
		{"SGD", false, nil},
		{"ADAM", true, nil},
	}

	fmt.Printf("%-10s %-10s %-10s %-12s %-12s\n",
		"method", "best acc", "final acc", "target@0.85", "total time")
	for _, m := range methods {
		c := cfg
		c.Adam = m.adam
		res := train.Run(c, build, trainSet, testSet, train.Classification(), m.pre, 0.85)
		last := res.Stats[len(res.Stats)-1]
		ttt := "-"
		if res.TimeToTarget > 0 {
			ttt = fmt.Sprintf("%.2fs", res.TimeToTarget.Seconds())
		}
		fmt.Printf("%-10s %-10.4f %-10.4f %-12s %-12.2fs\n",
			m.name, res.Best, last.Metric, ttt, last.Elapsed.Seconds())
	}
}
