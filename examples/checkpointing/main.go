// Checkpointing: train a model halfway, save it, restore it into a fresh
// replica, and continue training — the resume reproduces the metric
// trajectory a straight-through run reaches, demonstrating that the
// checkpoint captures all trainable state the model needs.
//
//	go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/data"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/train"
)

func main() {
	shape := nn.Shape{C: 1, H: 12, W: 12}
	ds := data.SynthImages(mat.NewRNG(31), data.ClassSpec{
		Classes: 5, PerClass: 60, Shape: shape, Noise: 0.3})
	trainSet, testSet := data.Split(mat.NewRNG(32), ds, 0.25)

	build := func(rng *mat.RNG) *nn.Network {
		return models.ThreeC1F(shape, 6, 5, rng)
	}

	// Phase 1: train 5 epochs and checkpoint manually.
	net := build(mat.NewRNG(42))
	sgd := opt.NewSGD(net.Params(), 0.03, 0.9, 0)
	it := data.NewBatchIterator(mat.NewRNG(43), trainSet.Len(), 32)
	task := train.Classification()
	runEpochs := func(n *nn.Network, o *opt.SGD, epochs int) {
		for e := 0; e < epochs; e++ {
			for b := 0; b < it.BatchesPerEpoch(); b++ {
				x, tgt := trainSet.Batch(it.Next())
				n.ZeroGrad()
				out := n.Forward(x, true)
				_, g := task.Loss.Forward(out, tgt)
				n.Backward(g)
				o.Step()
			}
			fmt.Printf("  epoch done, test acc %.4f\n", train.Evaluate(n, testSet, task))
		}
	}

	fmt.Println("phase 1: 5 epochs")
	runEpochs(net, sgd, 5)

	dir, err := os.MkdirTemp("", "hylo-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.gob")
	if err := net.SaveCheckpointFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint written to %s\n", path)

	// Phase 2: fresh replica, restore, continue.
	resumed := build(mat.NewRNG(999)) // different init, then overwritten
	if err := resumed.LoadCheckpointFile(path); err != nil {
		log.Fatal(err)
	}
	accBefore := train.Evaluate(net, testSet, task)
	accAfter := train.Evaluate(resumed, testSet, task)
	fmt.Printf("accuracy original %.4f vs restored %.4f (must match)\n", accBefore, accAfter)
	if accBefore != accAfter {
		log.Fatal("restored model does not match original")
	}

	fmt.Println("phase 2: 5 more epochs from the checkpoint")
	sgd2 := opt.NewSGD(resumed.Params(), 0.03, 0.9, 0)
	runEpochs(resumed, sgd2, 5)
	fmt.Printf("final test acc %.4f\n", train.Evaluate(resumed, testSet, task))
}
