// ViT attention: train a small vision-transformer (patchify → attention
// blocks with pre-norm residuals → mean pool) with HyLo and with ADAM.
// The attention projections are capture-enabled Linear layers, so HyLo's
// Khatri-Rao kernel reduction preconditions them per token — a capability
// beyond the paper's FC/conv formulation.
//
//	go run ./examples/vit_attention
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/train"
)

func main() {
	shape := nn.Shape{C: 1, H: 16, W: 16}
	ds := data.SynthImages(mat.NewRNG(41), data.ClassSpec{
		Classes: 5, PerClass: 60, Shape: shape, Noise: 0.3})
	trainSet, testSet := data.Split(mat.NewRNG(42), ds, 0.25)

	build := func(rng *mat.RNG) *nn.Network {
		// 16 patches of 4×4 → 16 tokens of dim 16 → model dim 12, 2 blocks.
		return models.TransformerLite(shape, 4, 12, 2, 5, rng)
	}
	cfg := train.Config{
		Epochs: 10, BatchSize: 25,
		LR:       opt.LRSchedule{Base: 0.05, DecayAt: []int{8}, Gamma: 0.1},
		Momentum: 0.9, UpdateFreq: 5, Damping: 0.1, Seed: 43,
		MaxGradNorm: 5,
	}

	hylo := func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
		return core.NewHyLo(net, 0.1, 0.1, c, tl, rng)
	}
	fmt.Println("training ViT-lite with HyLo...")
	hyloRes := train.Run(cfg, build, trainSet, testSet, train.Classification(), hylo, 0.9)

	adamCfg := cfg
	adamCfg.Adam = true
	adamCfg.LR.Base = 0.01
	fmt.Println("training ViT-lite with ADAM...")
	adamRes := train.Run(adamCfg, build, trainSet, testSet, train.Classification(), nil, 0.9)

	fmt.Printf("\n%-8s %-12s %-12s\n", "epoch", "HyLo acc", "ADAM acc")
	for i := range hyloRes.Stats {
		fmt.Printf("%-8d %-12.4f %-12.4f\n",
			i, hyloRes.Stats[i].Metric, adamRes.Stats[i].Metric)
	}
	fmt.Printf("\nHyLo best %.4f (modes: %v)\nADAM best %.4f\n",
		hyloRes.Best, hyloRes.EpochModes, adamRes.Best)
}
