// Quickstart: train a small MLP on a synthetic classification task with
// the HyLo optimizer and compare it against SGD. This is the minimal
// end-to-end use of the public training API:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/train"
)

func main() {
	// 1. A deterministic synthetic dataset: 4 classes, 16-dim vectors.
	ds := data.SynthVectors(mat.NewRNG(1), 4, 150, 16, 0.3)
	trainSet, testSet := data.Split(mat.NewRNG(2), ds, 0.25)

	// 2. A model builder. The trainer constructs one replica per worker.
	build := func(rng *mat.RNG) *nn.Network {
		return models.MLP(nn.Vec(16), []int{32, 16}, 4, rng)
	}

	// 3. Shared hyperparameters.
	cfg := train.Config{
		Epochs:    12,
		BatchSize: 32,
		LR:        opt.LRSchedule{Base: 0.05, DecayAt: []int{8}, Gamma: 0.1},
		Momentum:  0.9,
		// Second-order state refreshes every 5 iterations.
		UpdateFreq: 5,
		Damping:    0.1,
		Seed:       42,
	}

	// 4. HyLo: rank = 10% of the global batch, gradient-based switching.
	hylo := func(net *nn.Network, comm dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
		return core.NewHyLo(net, cfg.Damping, 0.1, comm, tl, rng)
	}

	fmt.Println("training with HyLo...")
	hyloRes := train.Run(cfg, build, trainSet, testSet, train.Classification(), hylo, 0.9)

	fmt.Println("training with SGD...")
	sgdRes := train.Run(cfg, build, trainSet, testSet, train.Classification(), nil, 0.9)

	fmt.Printf("\n%-8s %-14s %-14s\n", "epoch", "HyLo acc", "SGD acc")
	for i := range hyloRes.Stats {
		fmt.Printf("%-8d %-14.4f %-14.4f\n",
			i, hyloRes.Stats[i].Metric, sgdRes.Stats[i].Metric)
	}
	fmt.Printf("\nHyLo best %.4f (modes per epoch: %v)\nSGD  best %.4f\n",
		hyloRes.Best, hyloRes.EpochModes, sgdRes.Best)
}
