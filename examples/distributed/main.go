// Distributed: train a ResNet substitute on 8 simulated workers with HyLo
// and with KAISA (distributed KFAC), printing the phase-time breakdown the
// paper's Fig. 7 reports (factorization / inversion / gather / broadcast).
// Workers run as goroutines and move real tensors through the collectives.
//
//	go run ./examples/distributed
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/kfac"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/train"
)

func main() {
	const workers = 8
	shape := nn.Shape{C: 3, H: 16, W: 16}
	ds := data.SynthImages(mat.NewRNG(21), data.ClassSpec{
		Classes: 6, PerClass: 64, Shape: shape, Noise: 0.3})
	trainSet, testSet := data.Split(mat.NewRNG(22), ds, 0.25)

	build := func(rng *mat.RNG) *nn.Network {
		return models.ResNetCIFAR(shape, 1, 8, 6, rng)
	}
	cfg := train.Config{
		Epochs: 6, BatchSize: 6, // global batch = 48
		LR:       opt.LRSchedule{Base: 0.03, DecayAt: []int{4}, Gamma: 0.1},
		Momentum: 0.9, UpdateFreq: 5, Damping: 0.1, Seed: 23,
	}

	run := func(name string, pre train.PrecondFactory) train.Result {
		fmt.Printf("training %s on %d simulated workers...\n", name, workers)
		res := train.RunDistributed(workers, cfg, build, trainSet, testSet,
			train.Classification(), pre, 0.8)
		last := res.Stats[len(res.Stats)-1]
		fmt.Printf("  best acc %.4f, total %.2fs\n", res.Best, last.Elapsed.Seconds())
		fmt.Printf("  phase breakdown (rank 0):\n")
		for _, line := range []string{res.Timeline.String()} {
			fmt.Print("  " + line)
		}
		return res
	}

	run("HyLo", func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
		return core.NewHyLo(net, 0.1, 0.1, c, tl, rng)
	})
	fmt.Println()
	run("KAISA", func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
		return kfac.NewKFAC(net, 0.1, c, tl)
	})
}
