// Segmentation: train the MiniUNet substitute (encoder-decoder with skip
// connections) on a synthetic lesion-segmentation task — the stand-in for
// the paper's U-Net / LGG MRI experiment — with HyLo vs ADAM, reporting
// the Dice similarity coefficient.
//
//	go run ./examples/segmentation
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/mat"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/train"
)

func main() {
	shape := nn.Shape{C: 1, H: 16, W: 16}
	ds := data.SynthSegmentation(mat.NewRNG(11), data.SegSpec{
		N: 240, Shape: shape, Noise: 0.4})
	trainSet, testSet := data.Split(mat.NewRNG(12), ds, 0.25)

	build := func(rng *mat.RNG) *nn.Network {
		return models.MiniUNet(shape, 4, rng)
	}
	cfg := train.Config{
		Epochs: 10, BatchSize: 16,
		LR:       opt.LRSchedule{Base: 0.05, Gamma: 1},
		Momentum: 0.9, UpdateFreq: 5, Damping: 0.1, Seed: 13,
	}

	hylo := func(net *nn.Network, c dist.Comm, tl *dist.Timeline, rng *mat.RNG) opt.Preconditioner {
		return core.NewHyLo(net, 0.1, 0.1, c, tl, rng)
	}

	fmt.Println("training MiniUNet with HyLo...")
	hyloRes := train.Run(cfg, build, trainSet, testSet, train.Segmentation(), hylo, 0.85)

	adamCfg := cfg
	adamCfg.Adam = true
	adamCfg.LR.Base = 0.01
	fmt.Println("training MiniUNet with ADAM...")
	adamRes := train.Run(adamCfg, build, trainSet, testSet, train.Segmentation(), nil, 0.85)

	fmt.Printf("\n%-8s %-12s %-12s\n", "epoch", "HyLo Dice", "ADAM Dice")
	for i := range hyloRes.Stats {
		fmt.Printf("%-8d %-12.4f %-12.4f\n",
			i, hyloRes.Stats[i].Metric, adamRes.Stats[i].Metric)
	}
	fmt.Printf("\nHyLo best Dice %.4f, ADAM best Dice %.4f\n", hyloRes.Best, adamRes.Best)
}
