// Package repro is a from-scratch Go reproduction of "HyLo: A Hybrid
// Low-Rank Natural Gradient Descent Method" (SC 2022). The root package
// holds the benchmark entry points that regenerate every table and figure
// of the paper (bench_test.go); the implementation lives under internal/
// and the runnable tools under cmd/ and examples/. See README.md for the
// architecture map, DESIGN.md for the substitution plan, and
// EXPERIMENTS.md for measured-vs-paper results.
package repro
